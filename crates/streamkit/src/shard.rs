//! Hash-sharded parallel plan execution.
//!
//! The paper proves (Section 4.1, Lemma 1) that the results of a state-sliced
//! chain are independent of operator scheduling, and its order-preserving
//! union is driven purely by punctuations (Section 4.3).  For an equi-join
//! workload this has a strong consequence: the input streams can be
//! **hash-partitioned by the canonical join key**, and the same plan executed
//! once per partition on its own worker thread, without changing any query's
//! result multiset — two tuples can only join when their keys are equal, and
//! equal keys land on the same shard.
//!
//! [`ShardedExecutor`] packages that: it owns `N` [`Executor`]s over `N`
//! instances of the same [`Plan`], routes every ingested tuple to the shard
//! owning its key ([`ShardSpec`]), broadcasts punctuations to all shards,
//! runs the shards concurrently with scoped threads, and merges the per-shard
//! [`ExecutionReport`]s into one report with the usual schema
//! ([`ExecutionReport::merge`]).
//!
//! ## Key canonicalisation
//!
//! Routing reuses the [`join_state`](crate::join_state) key equivalence
//! ([`canonical_key_hash`]): `Int(3)` and `Float(3.0)` land on the same
//! shard, `-0.0` travels with `+0.0`, and so on — the same classes the
//! hash-indexed join state buckets by, so a shard's index sees exactly the
//! candidates the unsharded index would.  Two degenerate keys get special
//! treatment:
//!
//! * a **missing key attribute** never satisfies an equi condition, so the
//!   tuple's placement is irrelevant; it goes to shard 0,
//! * a **`NaN` key** equi-joins *every* number under this tree's comparison
//!   semantics, which no partition function can honour; such tuples also go
//!   to shard 0 and the shard-invariance guarantee is void for workloads
//!   that join on `NaN` keys (real deployments reject them at ingest).

use crate::error::{Result, StreamError};
use crate::executor::{ExecutionReport, Executor, ExecutorConfig};
use crate::join_state::{equi_key_fields, memoize_key, tuple_key};
use crate::plan::Plan;
use crate::predicate::JoinCondition;
use crate::queue::StreamItem;
use crate::tuple::{KeyClass, StreamId, Tuple};

/// How to extract the partitioning key from an input tuple: one key field
/// per join side (they differ for equi conditions like `A.x = B.y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    stream_a: StreamId,
    field_a: usize,
    stream_b: StreamId,
    field_b: usize,
}

impl ShardSpec {
    /// Both streams carry the key in the same field (the common
    /// `A.k = B.k` case).
    pub fn symmetric(field: usize) -> ShardSpec {
        ShardSpec {
            stream_a: StreamId::A,
            field_a: field,
            stream_b: StreamId::B,
            field_b: field,
        }
    }

    /// Explicit per-stream key fields.
    pub fn per_stream(
        stream_a: StreamId,
        field_a: usize,
        stream_b: StreamId,
        field_b: usize,
    ) -> ShardSpec {
        ShardSpec {
            stream_a,
            field_a,
            stream_b,
            field_b,
        }
    }

    /// Derive the spec from a join condition's first equi component, or
    /// `None` when the condition has no equi component — cross products and
    /// pure band/theta joins relate arbitrary key values, so no hash
    /// partition preserves their results.
    pub fn from_condition(
        cond: &JoinCondition,
        stream_a: StreamId,
        stream_b: StreamId,
    ) -> Option<ShardSpec> {
        let (field_a, field_b) = equi_key_fields(cond, true)?;
        Some(ShardSpec {
            stream_a,
            field_a,
            stream_b,
            field_b,
        })
    }

    /// The key field consulted for tuples of `stream` (tuples of unknown
    /// streams use the A-side field).
    pub fn key_field(&self, stream: StreamId) -> usize {
        if stream == self.stream_b {
            self.field_b
        } else {
            self.field_a
        }
    }

    /// The shard (out of `shards`) owning `tuple`'s join key, reusing the
    /// tuple's memoised canonical key hash when present.
    pub fn shard_of(&self, tuple: &Tuple, shards: usize) -> usize {
        debug_assert!(shards >= 1);
        Self::shard_for_class(tuple_key(tuple, self.key_field(tuple.stream)), shards)
    }

    /// Like [`ShardSpec::shard_of`], but memoises the canonical key hash on
    /// the tuple, so the shard's join states (and every slice of a chain)
    /// reuse the one hash computed at the routing step.
    pub fn route(&self, tuple: &mut Tuple, shards: usize) -> usize {
        debug_assert!(shards >= 1);
        Self::shard_for_class(memoize_key(tuple, self.key_field(tuple.stream)), shards)
    }

    fn shard_for_class(class: KeyClass, shards: usize) -> usize {
        match class {
            KeyClass::Hash(hash) => (hash % shards as u64) as usize,
            // Missing attribute (never joins) or NaN (unpartitionable, see
            // the module docs): a fixed shard keeps routing deterministic.
            KeyClass::Nan | KeyClass::Missing => 0,
        }
    }
}

/// Runs `N` instances of one plan in parallel over hash-partitioned input.
///
/// Build it from `N` structurally identical plans (e.g. materialised by a
/// plan factory), ingest through the same entry names as a single
/// [`Executor`], then [`run`](ShardedExecutor::run): each shard executes on
/// its own worker thread and the merged report is returned.
pub struct ShardedExecutor {
    shards: Vec<Executor>,
    spec: ShardSpec,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("shards", &self.shards.len())
            .field("spec", &self.spec)
            .finish()
    }
}

impl ShardedExecutor {
    /// Wrap one executor per plan with the default configuration.
    pub fn new(plans: Vec<Plan>, spec: ShardSpec) -> Result<Self> {
        ShardedExecutor::with_config(plans, spec, ExecutorConfig::default())
    }

    /// Wrap one executor per plan with an explicit configuration.
    ///
    /// The plans must be instances of the same logical plan (same number of
    /// nodes, same operator names in the same order): report merging sums
    /// per-node statistics position-wise, and differing plans would produce
    /// different results per shard anyway.
    pub fn with_config(plans: Vec<Plan>, spec: ShardSpec, config: ExecutorConfig) -> Result<Self> {
        Self::validate_instances(plans.iter())?;
        Ok(ShardedExecutor {
            shards: plans
                .into_iter()
                .map(|p| Executor::with_config(p, config.clone()))
                .collect(),
            spec,
        })
    }

    /// Wrap already-built executors (e.g. a single running [`Executor`] being
    /// promoted into a live-reslicing session).  The executors' plans must be
    /// instances of the same logical plan, like
    /// [`ShardedExecutor::with_config`].
    pub fn from_executors(executors: Vec<Executor>, spec: ShardSpec) -> Result<Self> {
        Self::validate_instances(executors.iter().map(|e| e.plan()))?;
        Ok(ShardedExecutor {
            shards: executors,
            spec,
        })
    }

    fn validate_instances<'a>(plans: impl Iterator<Item = &'a Plan>) -> Result<()> {
        let mut reference: Option<Vec<&str>> = None;
        for (i, plan) in plans.enumerate() {
            let names: Vec<&str> = plan.nodes().iter().map(|n| n.operator.name()).collect();
            match &reference {
                None => reference = Some(names),
                Some(first) if &names != first => {
                    return Err(StreamError::InvalidConfig(format!(
                        "shard plan {i} is not an instance of shard plan 0 \
                         (operator lists differ)"
                    )));
                }
                Some(_) => {}
            }
        }
        if reference.is_none() {
            return Err(StreamError::InvalidConfig(
                "a sharded executor needs at least one plan instance".to_string(),
            ));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard executors (shard index order).
    pub fn shards(&self) -> &[Executor] {
        &self.shards
    }

    /// Mutable access to the per-shard executors (used by online chain
    /// migration to swap plans and transplant operator state).
    pub fn shards_mut(&mut self) -> &mut [Executor] {
        &mut self.shards
    }

    /// Decompose into the per-shard executors and the partitioning spec
    /// (shard-count rescaling rebuilds the wrapper from scratch).
    pub fn into_parts(self) -> (Vec<Executor>, ShardSpec) {
        (self.shards, self.spec)
    }

    /// `true` if every shard's queues are drained (safe for plan surgery).
    pub fn is_drained(&self) -> bool {
        self.shards.iter().all(|s| s.is_drained())
    }

    /// Mark the start of an execution pause on every shard (see
    /// [`Executor::pause`]).
    pub fn pause(&mut self) {
        for shard in &mut self.shards {
            shard.pause();
        }
    }

    /// End a pause on every shard (see [`Executor::resume`]).
    pub fn resume(&mut self) {
        for shard in &mut self.shards {
            shard.resume();
        }
    }

    /// Replace every shard's plan with a fresh instance, returning the old
    /// plans in shard order for state harvesting.  All shards must be
    /// drained; the instance count must match the shard count (rescaling the
    /// shard count instead redistributes states by re-hashing keys and
    /// rebuilds the wrapper via [`ShardedExecutor::into_parts`]).  Statistics
    /// stay cumulative per shard ([`Executor::swap_plan`]).
    pub fn swap_plans(&mut self, plans: Vec<Plan>) -> Result<Vec<Plan>> {
        if plans.len() != self.shards.len() {
            return Err(StreamError::InvalidConfig(format!(
                "got {} plan instances for {} shards",
                plans.len(),
                self.shards.len()
            )));
        }
        Self::validate_instances(plans.iter())?;
        if !self.is_drained() {
            return Err(StreamError::Execution(
                "cannot swap plans with items still queued; drain first".to_string(),
            ));
        }
        let mut old = Vec::with_capacity(plans.len());
        for (shard, plan) in self.shards.iter_mut().zip(plans) {
            old.push(shard.swap_plan(plan)?);
        }
        Ok(old)
    }

    /// The shard a tuple routes to.
    pub fn shard_of(&self, tuple: &Tuple) -> usize {
        self.spec.shard_of(tuple, self.shards.len())
    }

    /// Ingest one item: tuples go to the shard owning their join key,
    /// punctuations are broadcast to every shard (a progress promise holds
    /// for all partitions of the stream).  The canonical key hash computed
    /// for routing is memoised on the tuple, so the shard's join states
    /// never recompute it.
    pub fn ingest(&mut self, entry: &str, item: impl Into<StreamItem>) -> Result<()> {
        self.ingest_routed(entry, item).map(|_| ())
    }

    /// Like [`ShardedExecutor::ingest`], but reports where the item went:
    /// `Some(shard index)` for a tuple, `None` for a broadcast punctuation.
    /// Live chain migration uses this to maintain per-shard progress
    /// watermarks without re-deriving the routing.
    pub fn ingest_routed(
        &mut self,
        entry: &str,
        item: impl Into<StreamItem>,
    ) -> Result<Option<usize>> {
        match item.into() {
            StreamItem::Tuple(mut t) => {
                let shard = self.spec.route(&mut t, self.shards.len());
                self.shards[shard].ingest(entry, t)?;
                Ok(Some(shard))
            }
            StreamItem::Punctuation(p) => {
                for shard in &mut self.shards {
                    shard.ingest(entry, p)?;
                }
                Ok(None)
            }
        }
    }

    /// Ingest a batch of items (see [`ShardedExecutor::ingest`]).
    pub fn ingest_all<I>(&mut self, entry: &str, items: I) -> Result<()>
    where
        I: IntoIterator,
        I::Item: Into<StreamItem>,
    {
        for item in items {
            self.ingest(entry, item)?;
        }
        Ok(())
    }

    /// Run every shard to quiescence — one worker thread per shard — and
    /// merge the per-shard reports ([`ExecutionReport::merge`]).
    pub fn run(&mut self) -> Result<ExecutionReport> {
        if self.shards.len() == 1 {
            // No parallelism to exploit; skip the thread machinery.
            return self.shards[0].run();
        }
        let results: Vec<Result<ExecutionReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.run()))
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| {
                        Err(StreamError::Execution(
                            "a shard worker thread panicked".to_string(),
                        ))
                    })
                })
                .collect()
        });
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        Ok(ExecutionReport::merge(reports))
    }

    /// All tuples the named retaining sink collected, gathered across shards
    /// (shard index order; within a shard, the sink's delivery order).
    pub fn sink_collected(&self, name: &str) -> Vec<Tuple> {
        self.shards
            .iter()
            .filter_map(|shard| shard.plan().sink(name))
            .flat_map(|sink| sink.collected().iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SinkOp, WindowJoinOp};
    use crate::predicate::JoinCondition;
    use crate::punctuation::Punctuation;
    use crate::time::Timestamp;
    use crate::tuple::Value;
    use crate::window::WindowSpec;

    fn a(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key])
    }

    fn join_plan(retain: bool) -> Plan {
        let mut builder = Plan::builder();
        let join = builder.add_op(WindowJoinOp::symmetric(
            "join",
            WindowSpec::from_secs(10),
            JoinCondition::equi(0),
        ));
        let sink = builder.add_op(if retain {
            SinkOp::retaining("q1")
        } else {
            SinkOp::new("q1")
        });
        builder.connect(join, 0, sink, 0);
        builder.entry("A", join, 0);
        builder.entry("B", join, 1);
        builder.build().unwrap()
    }

    fn inputs() -> (Vec<Tuple>, Vec<Tuple>) {
        let aa: Vec<Tuple> = (0..60).map(|i| a(i, (i % 7) as i64)).collect();
        let bb: Vec<Tuple> = (0..60).map(|i| b(i, (i % 5) as i64)).collect();
        (aa, bb)
    }

    fn run_with_shards(n: usize) -> (ExecutionReport, Vec<Tuple>) {
        let plans: Vec<Plan> = (0..n).map(|_| join_plan(true)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        let (aa, bb) = inputs();
        exec.ingest_all("A", aa).unwrap();
        exec.ingest_all("B", bb).unwrap();
        let report = exec.run().unwrap();
        (report, exec.sink_collected("q1"))
    }

    #[test]
    fn sharded_run_matches_single_shard_results() {
        let (single, mut single_tuples) = run_with_shards(1);
        let (sharded, mut sharded_tuples) = run_with_shards(4);
        assert_eq!(single.sink_count("q1"), sharded.sink_count("q1"));
        assert_eq!(single.ingested, sharded.ingested);
        assert!(single.sink_count("q1") > 0);
        // Same result multiset, shard-count invisible.
        let key = |t: &Tuple| (t.ts, t.origin_span);
        single_tuples.sort_by_key(key);
        sharded_tuples.sort_by_key(key);
        assert_eq!(
            single_tuples.iter().map(key).collect::<Vec<_>>(),
            sharded_tuples.iter().map(key).collect::<Vec<_>>()
        );
        // Equi probes touch the same buckets in either layout.
        assert_eq!(
            single.totals.probe_comparisons,
            sharded.totals.probe_comparisons
        );
        assert_eq!(sharded.node_stats.len(), single.node_stats.len());
    }

    #[test]
    fn tuples_route_by_canonical_key_and_punctuations_broadcast() {
        let plans: Vec<Plan> = (0..3).map(|_| join_plan(false)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        assert_eq!(exec.num_shards(), 3);
        // Same canonical key -> same shard, Int/Float equivalence included.
        let int_key = a(1, 9);
        let float_key = Tuple::new(
            Timestamp::from_secs(2),
            StreamId::A,
            vec![Value::Float(9.0)],
        );
        assert_eq!(exec.shard_of(&int_key), exec.shard_of(&float_key));
        // NaN and missing keys route deterministically to shard 0.
        let nan = Tuple::new(
            Timestamp::from_secs(3),
            StreamId::A,
            vec![Value::Float(f64::NAN)],
        );
        assert_eq!(exec.shard_of(&nan), 0);
        let missing = Tuple::new(Timestamp::from_secs(3), StreamId::A, vec![]);
        assert_eq!(exec.shard_of(&missing), 0);
        // Punctuations reach every shard; tuples exactly one.
        exec.ingest("A", a(1, 4)).unwrap();
        exec.ingest("A", Punctuation::new(Timestamp::from_secs(5)))
            .unwrap();
        let report = exec.run().unwrap();
        assert_eq!(report.ingested, 1);
    }

    #[test]
    fn per_stream_key_fields_follow_the_condition() {
        // A.1 = B.0: A tuples key on field 1, B tuples on field 0.
        let cond = JoinCondition::Equi {
            left_field: 1,
            right_field: 0,
        };
        let spec = ShardSpec::from_condition(&cond, StreamId::A, StreamId::B).unwrap();
        assert_eq!(spec.key_field(StreamId::A), 1);
        assert_eq!(spec.key_field(StreamId::B), 0);
        let a_tuple = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[99, 5]);
        let b_tuple = Tuple::of_ints(Timestamp::from_secs(2), StreamId::B, &[5, 42]);
        for shards in [2usize, 3, 8] {
            assert_eq!(
                spec.shard_of(&a_tuple, shards),
                spec.shard_of(&b_tuple, shards),
                "joinable tuples must co-locate for {shards} shards"
            );
        }
        // Non-equi conditions cannot be hash-partitioned.
        assert!(
            ShardSpec::from_condition(&JoinCondition::Cross, StreamId::A, StreamId::B).is_none()
        );
    }

    #[test]
    fn mismatched_plan_instances_are_rejected() {
        let mut other = Plan::builder();
        let sink = other.add_op(SinkOp::new("different"));
        other.entry("A", sink, 0);
        let plans = vec![join_plan(false), other.build().unwrap()];
        assert!(ShardedExecutor::new(plans, ShardSpec::symmetric(0)).is_err());
        assert!(ShardedExecutor::new(Vec::new(), ShardSpec::symmetric(0)).is_err());
    }

    #[test]
    fn routed_ingest_reports_the_shard_and_swap_plans_checks_shape() {
        let plans: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        let t = a(1, 4);
        let expected = exec.shard_of(&t);
        assert_eq!(exec.ingest_routed("A", t).unwrap(), Some(expected));
        assert_eq!(
            exec.ingest_routed("A", Punctuation::new(Timestamp::from_secs(2)))
                .unwrap(),
            None
        );
        // Swapping while undrained is refused; after a run it succeeds.
        let fresh: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        assert!(!exec.is_drained());
        assert!(exec.swap_plans(fresh).is_err());
        exec.run().unwrap();
        assert!(exec.is_drained());
        let fresh: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        let old = exec.swap_plans(fresh).unwrap();
        assert_eq!(old.len(), 2);
        // Wrong instance count is rejected up front.
        assert!(exec.swap_plans(vec![join_plan(false)]).is_err());
        // Pause/resume fan out to every shard.
        exec.pause();
        exec.resume();
        // from_executors round-trips through into_parts.
        let (executors, spec) = exec.into_parts();
        let rebuilt = ShardedExecutor::from_executors(executors, spec).unwrap();
        assert_eq!(rebuilt.num_shards(), 2);
        assert!(ShardedExecutor::from_executors(Vec::new(), ShardSpec::symmetric(0)).is_err());
    }

    #[test]
    fn merged_report_sums_counts_and_takes_wall_clock_max() {
        let (sharded, _) = run_with_shards(2);
        let expected: u64 = sharded
            .node_stats
            .iter()
            .map(|n| n.counters.tuples_processed)
            .sum();
        assert_eq!(sharded.totals.tuples_processed, expected);
        assert!(sharded.elapsed_secs > 0.0);
        assert!(sharded.service_rate() > 0.0);
    }
}
