//! Skew detection for the sharded router: a space-bounded heavy-hitter
//! sketch over canonical join-key hashes, plus the hot-key set that switches
//! keys from hash routing to replicate-to-all-shards routing (and back, once
//! they cool down).
//!
//! Hash partitioning on the join key balances load only when the key
//! frequencies do: under a Zipf-skewed key distribution one shard receives
//! nearly every tuple and bounds the whole pool's wall clock.  The classic
//! fix (fragment-and-replicate, here in the `BroadcastOp` idiom) is applied
//! *per key*: the router keeps approximate frequencies in a
//! [SpaceSaving](https://doi.org/10.1007/978-3-540-30570-5_27)-style sketch,
//! and when a key's guaranteed frequency share crosses
//! [`SkewConfig::hot_share`] it is promoted — its stored probe-side bucket is
//! replicated to every shard and future arrivals are routed as:
//!
//! * probe side (stream B): broadcast to all shards,
//! * build side (stream A): spread round-robin over shards.
//!
//! Each result pair is still produced exactly once (the A tuple lives in
//! exactly one shard; B is everywhere), so no dedup pass is needed beyond
//! the existing union/sink wiring.  Promotion is **not** sticky: a hot key
//! whose guaranteed share decays below half the promotion threshold for
//! [`SkewConfig::demote_observations`] consecutive observations is demoted —
//! the tracker queues it in [`HotKeyTracker::take_demotions`] and the router
//! migrates its state back to plain hash routing, so a transient hot spot no
//! longer blocks shard-count rescaling forever.

/// Configuration of the hot-key detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewConfig {
    /// A key is hot once its guaranteed frequency share (sketch count minus
    /// overestimation error, over total observed tuples) reaches this value.
    pub hot_share: f64,
    /// Minimum number of observed keyed tuples before any promotion, so a
    /// lucky first tuple cannot be declared hot.
    pub min_observations: u64,
    /// Number of counters the sketch keeps (its space bound).
    pub sketch_capacity: usize,
    /// Upper bound on promoted keys; replication cost grows with each.
    pub max_hot_keys: usize,
    /// A hot key whose guaranteed share stays below `hot_share / 2` for this
    /// many consecutive observations is demoted back to hash routing.  The
    /// half-threshold hysteresis band keeps a key oscillating around
    /// `hot_share` from thrashing between promotion and demotion.  `0`
    /// disables demotion (the old sticky behaviour).
    pub demote_observations: u64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            hot_share: 0.1,
            min_observations: 128,
            sketch_capacity: 64,
            max_hot_keys: 4,
            demote_observations: 256,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SketchEntry {
    key: u64,
    count: u64,
    /// Overestimation bound inherited from the evicted entry; the true
    /// frequency lies in `[count - error, count]`.
    error: u64,
}

/// A SpaceSaving / Misra-Gries style heavy-hitter sketch over `u64` keys.
///
/// Keeps at most `capacity` counters.  An unseen key arriving at a full
/// sketch evicts the minimum counter and inherits its count as error, which
/// preserves the invariant that every key with true frequency above
/// `total / capacity` is present.
#[derive(Debug, Clone)]
pub struct SpaceSavingSketch {
    entries: Vec<SketchEntry>,
    capacity: usize,
    total: u64,
}

impl SpaceSavingSketch {
    /// Create a sketch with `capacity` counters.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch capacity must be positive");
        SpaceSavingSketch {
            entries: Vec::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Observe one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.total += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            entry.count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(SketchEntry {
                key,
                count: 1,
                error: 0,
            });
            return;
        }
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.count)
            .expect("capacity > 0");
        min.key = key;
        min.error = min.count;
        min.count += 1;
    }

    /// `(estimated count, overestimation error)` for `key`, if tracked.  The
    /// true frequency is at least `count - error`.
    pub fn estimate(&self, key: u64) -> Option<(u64, u64)> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| (e.count, e.error))
    }

    /// Total observations so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of counters currently in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Tracks key frequencies and the hot set for the sharded router, promoting
/// heavy keys and demoting keys whose share has decayed (see the module
/// docs).
#[derive(Debug, Clone)]
pub struct HotKeyTracker {
    config: SkewConfig,
    sketch: SpaceSavingSketch,
    hot: Vec<u64>,
    /// Per-hot-key count of consecutive observations with guaranteed share
    /// below `hot_share / 2`, parallel to `hot`.
    decay: Vec<u64>,
    /// Keys demoted since the last [`HotKeyTracker::take_demotions`] call.
    pending_demotions: Vec<u64>,
    spread_next: usize,
}

impl HotKeyTracker {
    /// Create a tracker with the given configuration.
    pub fn new(config: SkewConfig) -> Self {
        let sketch = SpaceSavingSketch::new(config.sketch_capacity.max(1));
        HotKeyTracker {
            config,
            sketch,
            hot: Vec::new(),
            decay: Vec::new(),
            pending_demotions: Vec::new(),
            spread_next: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SkewConfig {
        &self.config
    }

    /// Observe one keyed tuple.  Returns `true` exactly when this
    /// observation promotes `key` to the hot set (the caller must then
    /// replicate the key's stored bucket before routing anything else).
    /// Every observation also advances the demotion decay counters of the
    /// current hot keys; demoted keys queue up in
    /// [`HotKeyTracker::take_demotions`] and may be re-promoted later if
    /// their share recovers.
    pub fn observe(&mut self, key: u64) -> bool {
        self.sketch.observe(key);
        self.update_decay();
        if self.hot.contains(&key) || self.hot.len() >= self.config.max_hot_keys {
            return false;
        }
        if self.sketch.total() < self.config.min_observations {
            return false;
        }
        let Some((count, error)) = self.sketch.estimate(key) else {
            return false;
        };
        let guaranteed = count.saturating_sub(error) as f64;
        if guaranteed / self.sketch.total() as f64 >= self.config.hot_share {
            self.hot.push(key);
            self.decay.push(0);
            true
        } else {
            false
        }
    }

    /// Advance every hot key's decay counter: below half the promotion
    /// threshold the counter grows, at or above it the counter resets, and a
    /// counter reaching [`SkewConfig::demote_observations`] demotes the key.
    fn update_decay(&mut self) {
        if self.config.demote_observations == 0 || self.hot.is_empty() {
            return;
        }
        let total = self.sketch.total() as f64;
        let threshold = self.config.hot_share / 2.0;
        let mut i = 0;
        while i < self.hot.len() {
            let key = self.hot[i];
            let guaranteed = self
                .sketch
                .estimate(key)
                .map_or(0.0, |(count, error)| count.saturating_sub(error) as f64);
            if guaranteed / total < threshold {
                self.decay[i] += 1;
            } else {
                self.decay[i] = 0;
            }
            if self.decay[i] >= self.config.demote_observations {
                self.hot.remove(i);
                self.decay.remove(i);
                self.pending_demotions.push(key);
            } else {
                i += 1;
            }
        }
    }

    /// Keys demoted since the last call, in demotion order.  The caller must
    /// migrate each key's replicated state back to hash routing (the router
    /// does this in `ShardedExecutor::demote_hot_key`).
    pub fn take_demotions(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_demotions)
    }

    /// Whether `key` is in the hot set.
    pub fn is_hot(&self, key: u64) -> bool {
        self.hot.contains(&key)
    }

    /// The promoted keys, in promotion order.
    pub fn hot_keys(&self) -> &[u64] {
        &self.hot
    }

    /// Next round-robin shard for spreading a hot build-side tuple.
    pub fn next_spread(&mut self, shards: usize) -> usize {
        let shard = self.spread_next % shards.max(1);
        self.spread_next = self.spread_next.wrapping_add(1);
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_is_exact_below_capacity() {
        let mut s = SpaceSavingSketch::new(8);
        for _ in 0..5 {
            s.observe(1);
        }
        for _ in 0..3 {
            s.observe(2);
        }
        assert_eq!(s.estimate(1), Some((5, 0)));
        assert_eq!(s.estimate(2), Some((3, 0)));
        assert_eq!(s.estimate(3), None);
        assert_eq!(s.total(), 8);
    }

    #[test]
    fn sketch_eviction_keeps_heavy_hitters_and_bounds_error() {
        // Capacity 2: a heavy key survives a churn of light keys.
        let mut s = SpaceSavingSketch::new(2);
        for i in 0..100u64 {
            s.observe(7); // heavy
            s.observe(100 + i); // each light key appears once
        }
        let (count, error) = s.estimate(7).expect("heavy key must stay tracked");
        assert!(count >= 100, "heavy key count {count} must not be lost");
        assert!(
            count.saturating_sub(error) <= 100,
            "guaranteed count must not exceed the true frequency"
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tracker_promotes_only_after_min_observations() {
        let mut t = HotKeyTracker::new(SkewConfig {
            hot_share: 0.5,
            min_observations: 10,
            sketch_capacity: 8,
            max_hot_keys: 2,
            demote_observations: 0,
        });
        for _ in 0..9 {
            assert!(!t.observe(42), "no promotion before min observations");
        }
        assert!(t.observe(42), "10th observation promotes at share 1.0");
        assert!(t.is_hot(42));
        assert!(!t.observe(42), "promotion fires exactly once");
    }

    #[test]
    fn tracker_ignores_cold_keys_and_caps_hot_set() {
        let mut t = HotKeyTracker::new(SkewConfig {
            hot_share: 0.4,
            min_observations: 4,
            sketch_capacity: 8,
            max_hot_keys: 1,
            demote_observations: 0,
        });
        // Interleave two keys at 50% each: first to cross gets the only slot.
        let mut promotions = 0;
        for _ in 0..20 {
            if t.observe(1) {
                promotions += 1;
            }
            if t.observe(2) {
                promotions += 1;
            }
        }
        assert_eq!(promotions, 1, "max_hot_keys caps the hot set");
        assert_eq!(t.hot_keys().len(), 1);
        // A key with a tiny share never promotes even with room.
        let mut t = HotKeyTracker::new(SkewConfig {
            hot_share: 0.4,
            min_observations: 4,
            sketch_capacity: 8,
            max_hot_keys: 4,
            demote_observations: 0,
        });
        for i in 0..100u64 {
            assert!(!t.observe(i % 10), "10% share below 40% threshold");
        }
        assert!(t.hot_keys().is_empty());
    }

    #[test]
    fn hot_key_demotes_after_share_decay_and_can_repromote() {
        let mut t = HotKeyTracker::new(SkewConfig {
            hot_share: 0.5,
            min_observations: 4,
            sketch_capacity: 8,
            max_hot_keys: 2,
            demote_observations: 10,
        });
        for i in 0..4 {
            let promoted = t.observe(7);
            assert_eq!(promoted, i == 3, "promotion on the 4th observation");
        }
        assert!(t.is_hot(7));
        // A cold-key flood decays 7's share: guaranteed 4/total drops below
        // hot_share/2 = 0.25 past 16 observations, and 10 consecutive
        // low-share observations demote.
        for i in 0..40u64 {
            assert!(!t.observe(100 + (i % 4)));
            if !t.is_hot(7) {
                break;
            }
        }
        assert!(!t.is_hot(7), "decayed key must be demoted");
        assert_eq!(t.take_demotions(), vec![7]);
        assert!(t.take_demotions().is_empty(), "demotions drain once");
        // The demoted key can re-promote when its share recovers.
        let mut repromoted = false;
        for _ in 0..400 {
            if t.observe(7) {
                repromoted = true;
                break;
            }
        }
        assert!(repromoted, "a recovered key promotes again");
        assert!(t.is_hot(7));
    }

    #[test]
    fn demotion_disabled_keeps_promotions_sticky() {
        let mut t = HotKeyTracker::new(SkewConfig {
            hot_share: 0.5,
            min_observations: 4,
            sketch_capacity: 8,
            max_hot_keys: 2,
            demote_observations: 0,
        });
        for _ in 0..4 {
            t.observe(7);
        }
        assert!(t.is_hot(7));
        for i in 0..200u64 {
            t.observe(100 + (i % 4));
        }
        assert!(t.is_hot(7), "demote_observations = 0 is sticky");
        assert!(t.take_demotions().is_empty());
    }

    #[test]
    fn spread_is_round_robin() {
        let mut t = HotKeyTracker::new(SkewConfig::default());
        let picks: Vec<usize> = (0..6).map(|_| t.next_spread(3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }
}
