//! Cost counters and execution statistics.
//!
//! The paper uses two resource metrics (Section 3 and Section 7):
//!
//! * **state memory** — the number of tuples held in join states,
//! * **CPU cost** — the number of value/timestamp comparisons, broken down
//!   into join probing, cross-purging, routing, filtering, splitting and
//!   union merging,
//!
//! plus the measured **service rate** (total throughput / running time) in the
//! experimental section.  [`CostCounters`], [`MemoryStats`] and
//! [`ExecutionSummary`]-style reports in the executor mirror exactly those
//! quantities.

/// Comparison-count breakdown, mirroring the cost components of Equations
/// 1–3 in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Join probe comparisons (value comparisons against window state).
    pub probe_comparisons: u64,
    /// Cross-purge timestamp comparisons.
    pub purge_comparisons: u64,
    /// Router timestamp comparisons (dispatching joined tuples to queries).
    pub route_comparisons: u64,
    /// Selection predicate comparisons.
    pub filter_comparisons: u64,
    /// Split-operator predicate comparisons (stream partitioning baseline).
    pub split_comparisons: u64,
    /// Order-preserving union merge comparisons.
    pub union_comparisons: u64,
    /// Tuples processed by operators (inputs consumed).
    pub tuples_processed: u64,
    /// Items emitted by operators (tuples + punctuations).
    pub items_emitted: u64,
    /// Items an operator refused to process (e.g. a union receiving an item
    /// on a port it does not have).  Always zero for well-formed plans; a
    /// non-zero value in a report flags a mis-wired plan.
    pub items_dropped: u64,
    /// Times the sharded router blocked because a worker's bounded input
    /// ring was full (backpressure events).  Not a comparison, so it is
    /// excluded from [`CostCounters::total_comparisons`]; it is attributed
    /// to the router, never to plan operators.
    pub router_stalls: u64,
}

impl CostCounters {
    /// Total comparison count (the paper's CPU-cost metric).
    pub fn total_comparisons(&self) -> u64 {
        self.probe_comparisons
            + self.purge_comparisons
            + self.route_comparisons
            + self.filter_comparisons
            + self.split_comparisons
            + self.union_comparisons
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CostCounters) {
        self.probe_comparisons += other.probe_comparisons;
        self.purge_comparisons += other.purge_comparisons;
        self.route_comparisons += other.route_comparisons;
        self.filter_comparisons += other.filter_comparisons;
        self.split_comparisons += other.split_comparisons;
        self.union_comparisons += other.union_comparisons;
        self.tuples_processed += other.tuples_processed;
        self.items_emitted += other.items_emitted;
        self.items_dropped += other.items_dropped;
        self.router_stalls += other.router_stalls;
    }
}

/// State-memory statistics in tuples *and bytes*, sampled during execution.
///
/// Tuple counts are the paper's own metric (Section 7 reports state memory
/// as tuple counts); the byte figures quantify the same curves in real
/// memory, sampled from the join states' arena bookkeeping
/// ([`crate::arena::TupleArena`]): *live* bytes are the estimated resident
/// footprint of the stored tuples, *capacity* bytes additionally count
/// purged-but-unreleased slots and unfilled tail capacity the arenas hold.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryStats {
    /// Largest total state size observed across all stateful operators.
    pub peak_state_tuples: usize,
    /// Time-averaged total state size (mean over samples).
    pub avg_state_tuples: f64,
    /// Final total state size when execution finished.
    pub final_state_tuples: usize,
    /// Largest total live state bytes observed across all stateful operators.
    pub peak_state_bytes: usize,
    /// Time-averaged total live state bytes (mean over samples).
    pub avg_state_bytes: f64,
    /// Final total live state bytes when execution finished.
    pub final_state_bytes: usize,
    /// Largest total arena-capacity bytes observed (live bytes plus
    /// unreleased/unfilled arena slots — what the allocator actually holds).
    pub peak_capacity_bytes: usize,
    /// Largest total queue length observed.
    pub peak_queue_items: usize,
    /// Largest occupancy (queued runs) observed on the sharded executor's
    /// bounded worker rings, summed over shards.  Zero for single-shard and
    /// plain [`crate::Executor`] runs.
    pub peak_ring_runs: usize,
    /// Number of samples taken.
    pub samples: usize,
}

impl MemoryStats {
    /// Record one sample of the current state / queue sizes.
    pub fn record(
        &mut self,
        state_tuples: usize,
        state_bytes: usize,
        capacity_bytes: usize,
        queue_items: usize,
    ) {
        self.peak_state_tuples = self.peak_state_tuples.max(state_tuples);
        self.peak_state_bytes = self.peak_state_bytes.max(state_bytes);
        self.peak_capacity_bytes = self.peak_capacity_bytes.max(capacity_bytes);
        self.peak_queue_items = self.peak_queue_items.max(queue_items);
        let n = self.samples as f64;
        self.avg_state_tuples = (self.avg_state_tuples * n + state_tuples as f64) / (n + 1.0);
        self.avg_state_bytes = (self.avg_state_bytes * n + state_bytes as f64) / (n + 1.0);
        self.samples += 1;
        self.final_state_tuples = state_tuples;
        self.final_state_bytes = state_bytes;
    }

    /// Absorb the statistics of another partition of the same run (used when
    /// merging per-shard reports).  Sizes add up: the partitions hold
    /// disjoint state concurrently, so the summed per-partition peaks —
    /// tuple, byte and capacity peaks alike — bound the true instantaneous
    /// total from above (the partitions need not peak at the same moment),
    /// and the summed time-averages are the time-average of the total when
    /// the partitions sample evenly.
    ///
    /// `avg_state_bytes` deliberately merges differently: it is the
    /// **sample-weighted mean** of the per-partition means, i.e. the average
    /// live bytes *per partition sample*, robust to partitions that sampled
    /// at different rates.  (`avg_state_tuples` keeps its historical
    /// summed-average semantics — changing it would silently rescale every
    /// committed benchmark.)  The asymmetry is pinned by
    /// `merge_byte_semantics_are_pinned`.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.peak_state_tuples += other.peak_state_tuples;
        self.peak_state_bytes += other.peak_state_bytes;
        self.peak_capacity_bytes += other.peak_capacity_bytes;
        self.peak_queue_items += other.peak_queue_items;
        self.peak_ring_runs += other.peak_ring_runs;
        self.avg_state_tuples += other.avg_state_tuples;
        let total_samples = self.samples + other.samples;
        if total_samples > 0 {
            self.avg_state_bytes = (self.avg_state_bytes * self.samples as f64
                + other.avg_state_bytes * other.samples as f64)
                / total_samples as f64;
        }
        self.final_state_tuples += other.final_state_tuples;
        self.final_state_bytes += other.final_state_bytes;
        self.samples = total_samples;
    }
}

/// Default EWMA smoothing factor used by
/// [`Executor::stats_snapshot`](crate::executor::Executor::stats_snapshot):
/// each new observation window contributes half of the smoothed value, so
/// rates and selectivities track drift within two or three windows without
/// chasing single-window noise.
pub const DEFAULT_STATS_ALPHA: f64 = 0.5;

/// Per-operator entry of a [`StatsSnapshot`]: the in/out tuple deltas of the
/// observation window, the EWMA-smoothed selectivity derived from them, and
/// the operator's live state / backlog at the sample point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorSnapshot {
    /// Operator name (matches [`NodeStats::name`]).
    pub name: String,
    /// Tuples the operator consumed during the observation window.
    pub tuples_in: u64,
    /// Items the operator emitted during the observation window.
    pub tuples_out: u64,
    /// EWMA-smoothed out/in ratio.  `1.0` until the operator has processed
    /// its first windowed input (see [`OperatorSnapshot::measured`]).
    pub selectivity: f64,
    /// `false` until at least one observation window saw input tuples —
    /// before that, `selectivity` is the uninformative default.
    pub measured: bool,
    /// Live state size in tuples at the sample point.
    pub state_tuples: usize,
    /// Live state size in bytes at the sample point.
    pub state_bytes: usize,
    /// Items queued at the operator's input ports at the sample point.
    pub backlog: usize,
}

/// A periodic measured-statistics sample of a running executor — the feedback
/// half of the adaptive re-optimization loop (`core::adaptive`).
///
/// Snapshots are deltas: every rate and count covers the window since the
/// previous `stats_snapshot()` call on the same executor, with arrival rates
/// and selectivities EWMA-smoothed across windows.  Arrival rates are
/// measured in tuples per *stream-time* second (ingested-timestamp progress),
/// the same unit as the cost model's declared `lambda` parameters, so a
/// snapshot can be fed straight back into chain re-costing.
///
/// Sampling reads the executor's existing counters between runs — the natural
/// punctuation boundary of this pull-based runtime — so it takes no locks and
/// adds nothing to the hot path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// 1-based snapshot sequence number on this executor.
    pub seq: u64,
    /// Cumulative in-run wall clock at the sample point.
    pub active_secs: f64,
    /// Stream-time seconds covered by this window (progress of the maximum
    /// ingested tuple timestamp).
    pub stream_secs: f64,
    /// Data tuples ingested during this window.
    pub ingested_delta: u64,
    /// EWMA arrival rate of stream A, tuples per stream-time second.
    pub rate_a: f64,
    /// EWMA arrival rate of stream B, tuples per stream-time second.
    pub rate_b: f64,
    /// Per-operator windowed statistics, in node-id order.
    pub operators: Vec<OperatorSnapshot>,
    /// Tuples delivered per sink during this window, sorted by sink name.
    pub sink_out: Vec<(String, u64)>,
    /// Total live state in tuples at the sample point.
    pub state_tuples: usize,
    /// Total live state in bytes at the sample point.
    pub state_bytes: usize,
    /// Total queued items at the sample point.
    pub backlog: usize,
    /// Fraction of routed tuples handled by the busiest shard (`0.0` on a
    /// plain unsharded executor).
    pub busiest_shard_share: f64,
    /// Router counters of the sharded executor, when sharded.
    pub router: Option<crate::shard::RouterStats>,
}

impl StatsSnapshot {
    /// Combined EWMA arrival rate of both streams.
    pub fn total_rate(&self) -> f64 {
        self.rate_a + self.rate_b
    }

    /// Total sink deliveries during this window.
    pub fn output_delta(&self) -> u64 {
        self.sink_out.iter().map(|(_, n)| *n).sum()
    }

    /// Look up an operator's windowed statistics by name.
    pub fn operator(&self, name: &str) -> Option<&OperatorSnapshot> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// Merge the per-shard snapshots of one logical sample (taken in the same
    /// parked window) into one snapshot with the same schema.  Counts, rates,
    /// state and backlog sum; selectivities are weighted by each shard's
    /// windowed input so busy shards dominate; wall clock and stream time are
    /// maxima (shards run concurrently over the same window).
    pub fn merge(snapshots: Vec<StatsSnapshot>) -> StatsSnapshot {
        let mut iter = snapshots.into_iter();
        let Some(mut merged) = iter.next() else {
            return StatsSnapshot::default();
        };
        // Re-derive weighted selectivities from scratch so the first shard is
        // not privileged.
        let mut weighted: Vec<(f64, f64, bool)> = merged
            .operators
            .iter()
            .map(|o| {
                (
                    o.selectivity * o.tuples_in as f64,
                    o.tuples_in as f64,
                    o.measured,
                )
            })
            .collect();
        let mut sinks: std::collections::HashMap<String, u64> = merged.sink_out.drain(..).collect();
        for snap in iter {
            debug_assert_eq!(
                merged.operators.len(),
                snap.operators.len(),
                "merged snapshots must cover the same plan"
            );
            merged.seq = merged.seq.max(snap.seq);
            merged.active_secs = merged.active_secs.max(snap.active_secs);
            merged.stream_secs = merged.stream_secs.max(snap.stream_secs);
            merged.ingested_delta += snap.ingested_delta;
            merged.rate_a += snap.rate_a;
            merged.rate_b += snap.rate_b;
            merged.state_tuples += snap.state_tuples;
            merged.state_bytes += snap.state_bytes;
            merged.backlog += snap.backlog;
            for ((into, acc), from) in merged
                .operators
                .iter_mut()
                .zip(weighted.iter_mut())
                .zip(&snap.operators)
            {
                into.tuples_in += from.tuples_in;
                into.tuples_out += from.tuples_out;
                into.state_tuples += from.state_tuples;
                into.state_bytes += from.state_bytes;
                into.backlog += from.backlog;
                acc.0 += from.selectivity * from.tuples_in as f64;
                acc.1 += from.tuples_in as f64;
                acc.2 |= from.measured;
            }
            for (name, count) in snap.sink_out {
                *sinks.entry(name).or_insert(0) += count;
            }
        }
        for (op, (sum, weight, measured)) in merged.operators.iter_mut().zip(weighted) {
            op.measured = measured;
            if weight > 0.0 {
                op.selectivity = sum / weight;
            }
        }
        let mut sink_out: Vec<(String, u64)> = sinks.into_iter().collect();
        sink_out.sort();
        merged.sink_out = sink_out;
        merged
    }
}

/// Incremental bookkeeping behind
/// [`Executor::stats_snapshot`](crate::executor::Executor::stats_snapshot):
/// the previous sample's cumulative counters (for deltas) and the EWMA
/// accumulators carried across windows.
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsWindow {
    pub(crate) seq: u64,
    pub(crate) prev_ingested: u64,
    pub(crate) prev_stream_count: [u64; 2],
    pub(crate) prev_stream_secs: f64,
    pub(crate) prev_in: Vec<u64>,
    pub(crate) prev_out: Vec<u64>,
    pub(crate) prev_sinks: std::collections::HashMap<String, u64>,
    pub(crate) rate_ewma: [Option<f64>; 2],
    pub(crate) sel_ewma: Vec<Option<f64>>,
}

impl StatsWindow {
    /// Forget per-node history after a plan swap: the new plan's node list is
    /// not comparable, so windowed deltas restart from zero.  Stream-level
    /// rate EWMAs and sink history survive (both are cumulative across
    /// swaps).
    pub(crate) fn reset_nodes(&mut self) {
        self.prev_in.clear();
        self.prev_out.clear();
        self.sel_ewma.clear();
    }

    /// EWMA update: the smoothed value after observing `inst`.
    pub(crate) fn smooth(prev: Option<f64>, inst: f64, alpha: f64) -> f64 {
        match prev {
            None => inst,
            Some(p) => alpha * inst + (1.0 - alpha) * p,
        }
    }
}

/// Per-operator statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Operator name.
    pub name: String,
    /// Cost counters attributed to this operator.
    pub counters: CostCounters,
    /// Final state size in tuples.
    pub state_tuples: usize,
    /// Peak state size in tuples.
    pub peak_state_tuples: usize,
    /// Final live state bytes.
    pub state_bytes: usize,
    /// Peak live state bytes.
    pub peak_state_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_comparisons_sums_all_components() {
        let c = CostCounters {
            probe_comparisons: 1,
            purge_comparisons: 2,
            route_comparisons: 3,
            filter_comparisons: 4,
            split_comparisons: 5,
            union_comparisons: 6,
            tuples_processed: 100,
            items_emitted: 50,
            items_dropped: 0,
            router_stalls: 9,
        };
        assert_eq!(c.total_comparisons(), 21);
    }

    #[test]
    fn router_stalls_accumulate_but_are_not_comparisons() {
        let mut a = CostCounters {
            router_stalls: 3,
            ..Default::default()
        };
        let b = CostCounters {
            router_stalls: 4,
            probe_comparisons: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.router_stalls, 7);
        assert_eq!(a.total_comparisons(), 2);
    }

    #[test]
    fn add_accumulates() {
        let mut a = CostCounters {
            probe_comparisons: 1,
            tuples_processed: 2,
            ..Default::default()
        };
        let b = CostCounters {
            probe_comparisons: 10,
            union_comparisons: 5,
            items_emitted: 7,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.probe_comparisons, 11);
        assert_eq!(a.union_comparisons, 5);
        assert_eq!(a.tuples_processed, 2);
        assert_eq!(a.items_emitted, 7);
    }

    #[test]
    fn merge_sums_partition_sizes() {
        let mut a = MemoryStats::default();
        a.record(10, 100, 120, 2);
        a.record(20, 200, 240, 4);
        let mut b = MemoryStats::default();
        b.record(5, 50, 60, 1);
        a.peak_ring_runs = 2;
        b.peak_ring_runs = 3;
        a.merge(&b);
        assert_eq!(a.peak_state_tuples, 25);
        assert_eq!(a.peak_queue_items, 5);
        assert_eq!(a.peak_ring_runs, 5);
        assert_eq!(a.final_state_tuples, 25);
        assert_eq!(a.samples, 3);
        assert!((a.avg_state_tuples - 20.0).abs() < 1e-9);
    }

    #[test]
    fn memory_stats_tracks_peak_and_average() {
        let mut m = MemoryStats::default();
        m.record(10, 100, 150, 1);
        m.record(30, 300, 450, 5);
        m.record(20, 200, 300, 2);
        assert_eq!(m.peak_state_tuples, 30);
        assert_eq!(m.peak_queue_items, 5);
        assert_eq!(m.final_state_tuples, 20);
        assert_eq!(m.samples, 3);
        assert!((m.avg_state_tuples - 20.0).abs() < 1e-9);
        assert_eq!(m.peak_state_bytes, 300);
        assert_eq!(m.peak_capacity_bytes, 450);
        assert_eq!(m.final_state_bytes, 200);
        assert!((m.avg_state_bytes - 200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_byte_semantics_are_pinned() {
        // Byte peaks merge like tuple peaks: summed per-partition peaks are
        // an upper bound on the instantaneous total (partitions need not
        // peak simultaneously).  The byte *average* is sample-weighted, NOT
        // summed like avg_state_tuples — this test pins the asymmetry.
        let mut a = MemoryStats::default();
        a.record(10, 1000, 1200, 0);
        a.record(10, 3000, 3600, 0); // avg_state_bytes = 2000 over 2 samples
        let mut b = MemoryStats::default();
        b.record(4, 500, 600, 0); // avg_state_bytes = 500 over 1 sample
        a.merge(&b);
        assert_eq!(a.peak_state_bytes, 3000 + 500, "byte peaks sum");
        assert_eq!(a.peak_capacity_bytes, 3600 + 600, "capacity peaks sum");
        assert_eq!(a.final_state_bytes, 3000 + 500, "final bytes sum");
        // Sample-weighted: (2000*2 + 500*1) / 3.
        assert!((a.avg_state_bytes - 4500.0 / 3.0).abs() < 1e-9);
        // ...whereas the tuple average keeps the historical summed form.
        assert!((a.avg_state_tuples - (10.0 + 4.0)).abs() < 1e-9);
        // Merging into an empty (0-sample) report keeps the other's average.
        let mut empty = MemoryStats::default();
        let mut c = MemoryStats::default();
        c.record(1, 700, 700, 0);
        empty.merge(&c);
        assert!((empty.avg_state_bytes - 700.0).abs() < 1e-9);
        // Merging two empty reports must not divide by zero.
        let mut e1 = MemoryStats::default();
        e1.merge(&MemoryStats::default());
        assert_eq!(e1.avg_state_bytes, 0.0);
        assert_eq!(e1.samples, 0);
    }
}
