//! Cost counters and execution statistics.
//!
//! The paper uses two resource metrics (Section 3 and Section 7):
//!
//! * **state memory** — the number of tuples held in join states,
//! * **CPU cost** — the number of value/timestamp comparisons, broken down
//!   into join probing, cross-purging, routing, filtering, splitting and
//!   union merging,
//!
//! plus the measured **service rate** (total throughput / running time) in the
//! experimental section.  [`CostCounters`], [`MemoryStats`] and
//! [`ExecutionSummary`]-style reports in the executor mirror exactly those
//! quantities.

/// Comparison-count breakdown, mirroring the cost components of Equations
/// 1–3 in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Join probe comparisons (value comparisons against window state).
    pub probe_comparisons: u64,
    /// Cross-purge timestamp comparisons.
    pub purge_comparisons: u64,
    /// Router timestamp comparisons (dispatching joined tuples to queries).
    pub route_comparisons: u64,
    /// Selection predicate comparisons.
    pub filter_comparisons: u64,
    /// Split-operator predicate comparisons (stream partitioning baseline).
    pub split_comparisons: u64,
    /// Order-preserving union merge comparisons.
    pub union_comparisons: u64,
    /// Tuples processed by operators (inputs consumed).
    pub tuples_processed: u64,
    /// Items emitted by operators (tuples + punctuations).
    pub items_emitted: u64,
    /// Items an operator refused to process (e.g. a union receiving an item
    /// on a port it does not have).  Always zero for well-formed plans; a
    /// non-zero value in a report flags a mis-wired plan.
    pub items_dropped: u64,
    /// Times the sharded router blocked because a worker's bounded input
    /// ring was full (backpressure events).  Not a comparison, so it is
    /// excluded from [`CostCounters::total_comparisons`]; it is attributed
    /// to the router, never to plan operators.
    pub router_stalls: u64,
}

impl CostCounters {
    /// Total comparison count (the paper's CPU-cost metric).
    pub fn total_comparisons(&self) -> u64 {
        self.probe_comparisons
            + self.purge_comparisons
            + self.route_comparisons
            + self.filter_comparisons
            + self.split_comparisons
            + self.union_comparisons
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CostCounters) {
        self.probe_comparisons += other.probe_comparisons;
        self.purge_comparisons += other.purge_comparisons;
        self.route_comparisons += other.route_comparisons;
        self.filter_comparisons += other.filter_comparisons;
        self.split_comparisons += other.split_comparisons;
        self.union_comparisons += other.union_comparisons;
        self.tuples_processed += other.tuples_processed;
        self.items_emitted += other.items_emitted;
        self.items_dropped += other.items_dropped;
        self.router_stalls += other.router_stalls;
    }
}

/// State-memory statistics in tuples *and bytes*, sampled during execution.
///
/// Tuple counts are the paper's own metric (Section 7 reports state memory
/// as tuple counts); the byte figures quantify the same curves in real
/// memory, sampled from the join states' arena bookkeeping
/// ([`crate::arena::TupleArena`]): *live* bytes are the estimated resident
/// footprint of the stored tuples, *capacity* bytes additionally count
/// purged-but-unreleased slots and unfilled tail capacity the arenas hold.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryStats {
    /// Largest total state size observed across all stateful operators.
    pub peak_state_tuples: usize,
    /// Time-averaged total state size (mean over samples).
    pub avg_state_tuples: f64,
    /// Final total state size when execution finished.
    pub final_state_tuples: usize,
    /// Largest total live state bytes observed across all stateful operators.
    pub peak_state_bytes: usize,
    /// Time-averaged total live state bytes (mean over samples).
    pub avg_state_bytes: f64,
    /// Final total live state bytes when execution finished.
    pub final_state_bytes: usize,
    /// Largest total arena-capacity bytes observed (live bytes plus
    /// unreleased/unfilled arena slots — what the allocator actually holds).
    pub peak_capacity_bytes: usize,
    /// Largest total queue length observed.
    pub peak_queue_items: usize,
    /// Largest occupancy (queued runs) observed on the sharded executor's
    /// bounded worker rings, summed over shards.  Zero for single-shard and
    /// plain [`crate::Executor`] runs.
    pub peak_ring_runs: usize,
    /// Number of samples taken.
    pub samples: usize,
}

impl MemoryStats {
    /// Record one sample of the current state / queue sizes.
    pub fn record(
        &mut self,
        state_tuples: usize,
        state_bytes: usize,
        capacity_bytes: usize,
        queue_items: usize,
    ) {
        self.peak_state_tuples = self.peak_state_tuples.max(state_tuples);
        self.peak_state_bytes = self.peak_state_bytes.max(state_bytes);
        self.peak_capacity_bytes = self.peak_capacity_bytes.max(capacity_bytes);
        self.peak_queue_items = self.peak_queue_items.max(queue_items);
        let n = self.samples as f64;
        self.avg_state_tuples = (self.avg_state_tuples * n + state_tuples as f64) / (n + 1.0);
        self.avg_state_bytes = (self.avg_state_bytes * n + state_bytes as f64) / (n + 1.0);
        self.samples += 1;
        self.final_state_tuples = state_tuples;
        self.final_state_bytes = state_bytes;
    }

    /// Absorb the statistics of another partition of the same run (used when
    /// merging per-shard reports).  Sizes add up: the partitions hold
    /// disjoint state concurrently, so the summed per-partition peaks —
    /// tuple, byte and capacity peaks alike — bound the true instantaneous
    /// total from above (the partitions need not peak at the same moment),
    /// and the summed time-averages are the time-average of the total when
    /// the partitions sample evenly.
    ///
    /// `avg_state_bytes` deliberately merges differently: it is the
    /// **sample-weighted mean** of the per-partition means, i.e. the average
    /// live bytes *per partition sample*, robust to partitions that sampled
    /// at different rates.  (`avg_state_tuples` keeps its historical
    /// summed-average semantics — changing it would silently rescale every
    /// committed benchmark.)  The asymmetry is pinned by
    /// `merge_byte_semantics_are_pinned`.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.peak_state_tuples += other.peak_state_tuples;
        self.peak_state_bytes += other.peak_state_bytes;
        self.peak_capacity_bytes += other.peak_capacity_bytes;
        self.peak_queue_items += other.peak_queue_items;
        self.peak_ring_runs += other.peak_ring_runs;
        self.avg_state_tuples += other.avg_state_tuples;
        let total_samples = self.samples + other.samples;
        if total_samples > 0 {
            self.avg_state_bytes = (self.avg_state_bytes * self.samples as f64
                + other.avg_state_bytes * other.samples as f64)
                / total_samples as f64;
        }
        self.final_state_tuples += other.final_state_tuples;
        self.final_state_bytes += other.final_state_bytes;
        self.samples = total_samples;
    }
}

/// Per-operator statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Operator name.
    pub name: String,
    /// Cost counters attributed to this operator.
    pub counters: CostCounters,
    /// Final state size in tuples.
    pub state_tuples: usize,
    /// Peak state size in tuples.
    pub peak_state_tuples: usize,
    /// Final live state bytes.
    pub state_bytes: usize,
    /// Peak live state bytes.
    pub peak_state_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_comparisons_sums_all_components() {
        let c = CostCounters {
            probe_comparisons: 1,
            purge_comparisons: 2,
            route_comparisons: 3,
            filter_comparisons: 4,
            split_comparisons: 5,
            union_comparisons: 6,
            tuples_processed: 100,
            items_emitted: 50,
            items_dropped: 0,
            router_stalls: 9,
        };
        assert_eq!(c.total_comparisons(), 21);
    }

    #[test]
    fn router_stalls_accumulate_but_are_not_comparisons() {
        let mut a = CostCounters {
            router_stalls: 3,
            ..Default::default()
        };
        let b = CostCounters {
            router_stalls: 4,
            probe_comparisons: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.router_stalls, 7);
        assert_eq!(a.total_comparisons(), 2);
    }

    #[test]
    fn add_accumulates() {
        let mut a = CostCounters {
            probe_comparisons: 1,
            tuples_processed: 2,
            ..Default::default()
        };
        let b = CostCounters {
            probe_comparisons: 10,
            union_comparisons: 5,
            items_emitted: 7,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.probe_comparisons, 11);
        assert_eq!(a.union_comparisons, 5);
        assert_eq!(a.tuples_processed, 2);
        assert_eq!(a.items_emitted, 7);
    }

    #[test]
    fn merge_sums_partition_sizes() {
        let mut a = MemoryStats::default();
        a.record(10, 100, 120, 2);
        a.record(20, 200, 240, 4);
        let mut b = MemoryStats::default();
        b.record(5, 50, 60, 1);
        a.peak_ring_runs = 2;
        b.peak_ring_runs = 3;
        a.merge(&b);
        assert_eq!(a.peak_state_tuples, 25);
        assert_eq!(a.peak_queue_items, 5);
        assert_eq!(a.peak_ring_runs, 5);
        assert_eq!(a.final_state_tuples, 25);
        assert_eq!(a.samples, 3);
        assert!((a.avg_state_tuples - 20.0).abs() < 1e-9);
    }

    #[test]
    fn memory_stats_tracks_peak_and_average() {
        let mut m = MemoryStats::default();
        m.record(10, 100, 150, 1);
        m.record(30, 300, 450, 5);
        m.record(20, 200, 300, 2);
        assert_eq!(m.peak_state_tuples, 30);
        assert_eq!(m.peak_queue_items, 5);
        assert_eq!(m.final_state_tuples, 20);
        assert_eq!(m.samples, 3);
        assert!((m.avg_state_tuples - 20.0).abs() < 1e-9);
        assert_eq!(m.peak_state_bytes, 300);
        assert_eq!(m.peak_capacity_bytes, 450);
        assert_eq!(m.final_state_bytes, 200);
        assert!((m.avg_state_bytes - 200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_byte_semantics_are_pinned() {
        // Byte peaks merge like tuple peaks: summed per-partition peaks are
        // an upper bound on the instantaneous total (partitions need not
        // peak simultaneously).  The byte *average* is sample-weighted, NOT
        // summed like avg_state_tuples — this test pins the asymmetry.
        let mut a = MemoryStats::default();
        a.record(10, 1000, 1200, 0);
        a.record(10, 3000, 3600, 0); // avg_state_bytes = 2000 over 2 samples
        let mut b = MemoryStats::default();
        b.record(4, 500, 600, 0); // avg_state_bytes = 500 over 1 sample
        a.merge(&b);
        assert_eq!(a.peak_state_bytes, 3000 + 500, "byte peaks sum");
        assert_eq!(a.peak_capacity_bytes, 3600 + 600, "capacity peaks sum");
        assert_eq!(a.final_state_bytes, 3000 + 500, "final bytes sum");
        // Sample-weighted: (2000*2 + 500*1) / 3.
        assert!((a.avg_state_bytes - 4500.0 / 3.0).abs() < 1e-9);
        // ...whereas the tuple average keeps the historical summed form.
        assert!((a.avg_state_tuples - (10.0 + 4.0)).abs() < 1e-9);
        // Merging into an empty (0-sample) report keeps the other's average.
        let mut empty = MemoryStats::default();
        let mut c = MemoryStats::default();
        c.record(1, 700, 700, 0);
        empty.merge(&c);
        assert!((empty.avg_state_bytes - 700.0).abs() < 1e-9);
        // Merging two empty reports must not divide by zero.
        let mut e1 = MemoryStats::default();
        e1.merge(&MemoryStats::default());
        assert_eq!(e1.avg_state_bytes, 0.0);
        assert_eq!(e1.samples, 0);
    }
}
