//! Timestamps and time deltas.
//!
//! The paper assumes every tuple carries an arrival timestamp with a global
//! ordering (Section 2).  We model time as integer microseconds since an
//! arbitrary epoch, which keeps arithmetic exact and ordering total.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in stream time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A length of stream time, in microseconds (window sizes, slice ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub u64);

impl Timestamp {
    /// The smallest possible timestamp.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest possible timestamp (used as an "end of stream" watermark).
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Build a timestamp from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Build a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Build a timestamp from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Raw microsecond value.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Absolute difference between two timestamps.
    pub fn abs_diff(self, other: Timestamp) -> TimeDelta {
        TimeDelta(self.0.abs_diff(other.0))
    }

    /// Difference `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }

    /// The later of two timestamps (the timestamp assigned to a joined tuple).
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl TimeDelta {
    /// A zero-length delta.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest possible delta (an effectively unbounded window).
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Build a delta from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * 1_000_000)
    }

    /// Build a delta from fractional seconds (rounded to microseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        TimeDelta((secs * 1_000_000.0).round() as u64)
    }

    /// Build a delta from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        TimeDelta(ms * 1_000)
    }

    /// Build a delta from microseconds.
    pub fn from_micros(us: u64) -> Self {
        TimeDelta(us)
    }

    /// Raw microsecond value.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if this delta is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two deltas.
    pub fn saturating_sub(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        assert_eq!(Timestamp::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(TimeDelta::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(Timestamp::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(TimeDelta::from_millis(250).as_micros(), 250_000);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Timestamp::from_secs(5);
        let b = Timestamp::from_secs(9);
        assert_eq!(a.abs_diff(b), TimeDelta::from_secs(4));
        assert_eq!(b.abs_diff(a), TimeDelta::from_secs(4));
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(4);
        assert_eq!(a.saturating_sub(b), TimeDelta::ZERO);
        assert_eq!(b.saturating_sub(a), TimeDelta::from_secs(3));
    }

    #[test]
    fn add_delta_to_timestamp() {
        let a = Timestamp::from_secs(1);
        assert_eq!(a + TimeDelta::from_secs(2), Timestamp::from_secs(3));
        assert_eq!(a - TimeDelta::from_secs(2), Timestamp::ZERO);
    }

    #[test]
    fn min_max_ordering() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(Timestamp::from_secs(2).to_string(), "2.000000s");
        assert_eq!(TimeDelta::from_millis(500).to_string(), "0.500000s");
    }

    #[test]
    fn delta_arithmetic() {
        let d = TimeDelta::from_secs(10);
        assert_eq!(d - TimeDelta::from_secs(3), TimeDelta::from_secs(7));
        assert_eq!(d.saturating_sub(TimeDelta::from_secs(30)), TimeDelta::ZERO);
        let mut e = TimeDelta::from_secs(1);
        e += TimeDelta::from_secs(2);
        assert_eq!(e, TimeDelta::from_secs(3));
        assert!(TimeDelta::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(TimeDelta::from_secs_f64(2.5).as_micros(), 2_500_000);
        assert_eq!(TimeDelta::from_secs_f64(0.0000004).as_micros(), 0);
    }
}
