//! Tuples, values and schemas.
//!
//! A [`Tuple`] is the unit of data flowing through a plan.  Besides the
//! payload values it carries:
//!
//! * the arrival [`Timestamp`] (global ordering, Section 2 of the paper),
//! * the originating [`StreamId`],
//! * an `origin_span` — for joined tuples the absolute timestamp difference
//!   between the two joined inputs, which the router operator of the
//!   selection pull-up baseline needs to dispatch results per query window,
//! * a [`TupleRole`] used by state-sliced binary joins to distinguish the
//!   *male* (probing) and *female* (state-filling) reference copies of an
//!   arrival (Section 4.2),
//! * a `lineage` level used by selection push-down into the chain so a tuple
//!   is evaluated against each selection predicate at most once and travels
//!   only as far down the chain as it can still contribute (Section 6.1).

use std::fmt;
use std::sync::Arc;

use crate::time::{TimeDelta, Timestamp};

/// Identifier of an input stream (e.g. stream A vs. stream B of a join).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u16);

impl StreamId {
    /// Conventional id for the left join input.
    pub const A: StreamId = StreamId(0);
    /// Conventional id for the right join input.
    pub const B: StreamId = StreamId(1);
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StreamId::A => write!(f, "A"),
            StreamId::B => write!(f, "B"),
            StreamId(n) => write!(f, "S{n}"),
        }
    }
}

/// The dynamic type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Missing value.
    Null,
}

impl Value {
    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload if this is a `Float` (or an `Int`, widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Total ordering used by comparison predicates.  Values of different
    /// types compare by type tag; `Null` sorts first and only equals itself.
    pub fn compare(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        match (self, other) {
            (Null, Null) => Equal,
            (Null, _) => Less,
            (_, Null) => Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Equal),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Different, incomparable types: order by a stable type rank.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// A named, typed attribute of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub dtype: DataType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: &str, dtype: DataType) -> Self {
        Field {
            name: name.to_string(),
            dtype,
        }
    }
}

/// An ordered list of attributes describing a stream's tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Attribute list.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Concatenate two schemas (used for join output schemas).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }
}

/// Role of a tuple with respect to reference-copy pipelining.
///
/// Regular stream tuples are `Regular`.  The head of a state-sliced binary
/// join chain splits each arrival into a `Male` copy — which purges, probes
/// and is then propagated down the chain — and a `Female` copy — which is
/// inserted into the slice state and later travels down the chain when purged
/// (Section 4.2, Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TupleRole {
    /// An ordinary stream or result tuple.
    #[default]
    Regular,
    /// Probing / purging reference copy.
    Male,
    /// State-filling reference copy.
    Female,
}

/// Lineage level: the highest (1-based) slice index a tuple can still
/// contribute to under selection push-down.  `u32::MAX` means "unrestricted".
pub const LINEAGE_ALL: u32 = u32::MAX;

/// The canonical equi-join key class of one payload field, memoised on the
/// tuple so the hash is computed once (at ingest / at the chain head) and
/// reused by every slice's join-state insert and probe, and by hash-shard
/// routing, instead of being recomputed at every hop.
///
/// The classes mirror
/// [`canonical_key_hash`](crate::join_state::canonical_key_hash): values that
/// [`Value::compare`] as `Equal` share a `Hash`, `NaN` is unhashable, and a
/// missing attribute is remembered as such (it never satisfies an equi
/// condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyClass {
    /// Canonical 64-bit hash of the key value.
    Hash(u64),
    /// The key is `NaN`: unindexable, probes degrade to a full scan.
    Nan,
    /// The tuple has no attribute at the key field.
    Missing,
}

/// A memoised key hash: valid only for consumers keying on the same `field`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyHash {
    /// The payload field the hash was computed over.
    pub field: u32,
    /// The canonical key class of that field's value.
    pub class: KeyClass,
}

/// The unit of data flowing through a plan.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Arrival timestamp (for joined tuples: max of the input timestamps).
    pub ts: Timestamp,
    /// Originating stream.
    pub stream: StreamId,
    /// Payload values, shared so that reference copies are cheap.
    pub values: Arc<[Value]>,
    /// For joined tuples, |Ta - Tb| of the joined pair; zero otherwise.
    pub origin_span: TimeDelta,
    /// Reference-copy role (see [`TupleRole`]).
    pub role: TupleRole,
    /// Selection push-down lineage level (see [`LINEAGE_ALL`]).
    pub lineage: u32,
    /// Memoised canonical equi-key hash (see [`KeyHash`]).  A cache, not part
    /// of the tuple's identity: excluded from equality, cleared whenever the
    /// payload layout changes (projection, join concatenation).
    pub key_hash: Option<KeyHash>,
}

/// Payload equality only — the [`Tuple::key_hash`] memo is a cache and two
/// tuples differing only in whether the hash has been computed yet are equal.
impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.ts == other.ts
            && self.stream == other.stream
            && self.values == other.values
            && self.origin_span == other.origin_span
            && self.role == other.role
            && self.lineage == other.lineage
    }
}

impl Tuple {
    /// Build a regular tuple.
    pub fn new(ts: Timestamp, stream: StreamId, values: Vec<Value>) -> Self {
        Tuple {
            ts,
            stream,
            values: Arc::from(values),
            origin_span: TimeDelta::ZERO,
            role: TupleRole::Regular,
            lineage: LINEAGE_ALL,
            key_hash: None,
        }
    }

    /// The memoised key class for `field`, if one has been computed for that
    /// field (see [`crate::join_state::memoize_key`]).
    pub fn memoized_key(&self, field: usize) -> Option<KeyClass> {
        match self.key_hash {
            Some(memo) if memo.field as usize == field => Some(memo.class),
            _ => None,
        }
    }

    /// Memoise the key class of `field` (overwrites a memo for another field;
    /// one field per tuple is enough for every join in this tree, since a
    /// stream's tuples key on one side of the condition throughout a chain).
    pub fn set_key_memo(&mut self, field: usize, class: KeyClass) {
        self.key_hash = Some(KeyHash {
            field: field as u32,
            class,
        });
    }

    /// Build a tuple with integer payloads (convenient in tests).
    pub fn of_ints(ts: Timestamp, stream: StreamId, ints: &[i64]) -> Self {
        Tuple::new(ts, stream, ints.iter().copied().map(Value::Int).collect())
    }

    /// Number of payload values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Payload value by index.
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// A copy of this tuple with a different role but shared payload.
    pub fn with_role(&self, role: TupleRole) -> Tuple {
        Tuple {
            role,
            values: Arc::clone(&self.values),
            ..self.clone()
        }
    }

    /// A copy of this tuple with the given lineage level.
    pub fn with_lineage(&self, lineage: u32) -> Tuple {
        Tuple {
            lineage,
            values: Arc::clone(&self.values),
            ..self.clone()
        }
    }

    /// Join two tuples: concatenates payloads, assigns `max(Ta, Tb)` as the
    /// result timestamp (paper Section 2) and records |Ta - Tb| as the origin
    /// span for downstream routing.  The key memo is not propagated: the
    /// concatenated payload has a new field layout.
    pub fn join(left: &Tuple, right: &Tuple, out_stream: StreamId) -> Tuple {
        // Collecting the exact-size chain builds the shared slice in one
        // allocation (no Vec round-trip); joins dominate result handling, so
        // this path is hot.
        let values: Arc<[Value]> = left
            .values
            .iter()
            .chain(right.values.iter())
            .cloned()
            .collect();
        Tuple {
            ts: left.ts.max(right.ts),
            stream: out_stream,
            values,
            origin_span: left.ts.abs_diff(right.ts),
            role: TupleRole::Regular,
            lineage: left.lineage.min(right.lineage),
            key_hash: None,
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}[", self.stream, self.ts)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
    }

    #[test]
    fn value_compare_same_type() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Less);
        assert_eq!(Value::Float(2.0).compare(&Value::Float(2.0)), Equal);
        assert_eq!(Value::str("b").compare(&Value::str("a")), Greater);
        assert_eq!(Value::Bool(false).compare(&Value::Bool(true)), Less);
    }

    #[test]
    fn value_compare_mixed_numeric() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).compare(&Value::Float(1.5)), Less);
        assert_eq!(Value::Float(2.5).compare(&Value::Int(2)), Greater);
    }

    #[test]
    fn null_sorts_first() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.compare(&Value::Int(0)), Less);
        assert_eq!(Value::Int(0).compare(&Value::Null), Greater);
        assert_eq!(Value::Null.compare(&Value::Null), Equal);
    }

    #[test]
    fn schema_lookup_and_concat() {
        let a = Schema::new(vec![
            Field::new("location", DataType::Int),
            Field::new("value", DataType::Float),
        ]);
        let b = Schema::new(vec![Field::new("humidity", DataType::Float)]);
        assert_eq!(a.index_of("value"), Some(1));
        assert_eq!(a.index_of("missing"), None);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.index_of("humidity"), Some(2));
        assert!(!c.is_empty());
        assert!(Schema::default().is_empty());
    }

    #[test]
    fn tuple_join_semantics() {
        let a = Tuple::of_ints(Timestamp::from_secs(5), StreamId::A, &[7, 1]);
        let b = Tuple::of_ints(Timestamp::from_secs(2), StreamId::B, &[7, 9]);
        let j = Tuple::join(&a, &b, StreamId(9));
        assert_eq!(j.ts, Timestamp::from_secs(5));
        assert_eq!(j.origin_span, TimeDelta::from_secs(3));
        assert_eq!(j.arity(), 4);
        assert_eq!(j.value(3), Some(&Value::Int(9)));
        assert_eq!(j.stream, StreamId(9));
    }

    #[test]
    fn tuple_role_and_lineage_copies_share_payload() {
        let a = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[1, 2, 3]);
        let male = a.with_role(TupleRole::Male);
        let limited = a.with_lineage(2);
        assert_eq!(male.role, TupleRole::Male);
        assert_eq!(limited.lineage, 2);
        assert!(Arc::ptr_eq(&a.values, &male.values));
        assert!(Arc::ptr_eq(&a.values, &limited.values));
    }

    #[test]
    fn key_memo_is_per_field_and_invisible_to_equality() {
        let mut a = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[7, 8]);
        let plain = a.clone();
        assert_eq!(a.memoized_key(0), None);
        a.set_key_memo(0, KeyClass::Hash(42));
        assert_eq!(a.memoized_key(0), Some(KeyClass::Hash(42)));
        // A memo for field 0 says nothing about field 1.
        assert_eq!(a.memoized_key(1), None);
        // The memo is a cache, not identity.
        assert_eq!(a, plain);
        // Role/lineage copies share the memo (same payload, same layout)...
        assert_eq!(
            a.with_role(TupleRole::Male).memoized_key(0),
            Some(KeyClass::Hash(42))
        );
        assert_eq!(a.with_lineage(3).memoized_key(0), Some(KeyClass::Hash(42)));
        // ...but a join result has a new layout and drops it.
        let j = Tuple::join(&a, &plain, StreamId(9));
        assert_eq!(j.key_hash, None);
    }

    #[test]
    fn display_is_stable() {
        let a = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[1, 2]);
        assert_eq!(a.to_string(), "A@1.000000s[1, 2]");
        assert_eq!(StreamId(7).to_string(), "S7");
    }
}
