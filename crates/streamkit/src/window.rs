//! Window specifications.
//!
//! A [`WindowSpec`] is a regular sliding window `[0, W)` as used by ordinary
//! window joins.  A [`SliceWindow`] is the half-open slice `[start, end)` of a
//! state-sliced join (Definition 1 of the paper); a regular window is the
//! special case `start == 0`.

use crate::time::{TimeDelta, Timestamp};

/// A regular sliding window of a given range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    /// Window length.
    pub range: TimeDelta,
}

impl WindowSpec {
    /// Build a window from its range.
    pub fn new(range: TimeDelta) -> Self {
        WindowSpec { range }
    }

    /// Build a window from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        WindowSpec {
            range: TimeDelta::from_secs(secs),
        }
    }

    /// `true` if a stored tuple with timestamp `stored` is inside this
    /// window when a probing tuple with timestamp `probe` arrives, i.e.
    /// `0 <= probe - stored < range`.
    ///
    /// Containment is deliberately one-directional: a stored tuple *newer*
    /// than the probe is never "in window" here.  Whether the pair joins via
    /// the stored tuple's own window is a separate question the caller must
    /// ask with the roles swapped — exactly what the binary window join's
    /// two probe directions do.  (Previously the subtraction saturated to
    /// zero for newer stored tuples, so any future tuple was accidentally
    /// "in window" regardless of the range, making out-of-order semantics
    /// asymmetric between the two join directions.)
    pub fn contains(&self, probe: Timestamp, stored: Timestamp) -> bool {
        stored <= probe && probe.saturating_sub(stored) < self.range
    }

    /// `true` if a stored tuple has aged out of this window when `probe` is
    /// processed (`probe - stored >= range`).  A stored tuple newer than the
    /// probe has age zero and is never expired — purge paths must use this
    /// (and not `!contains`) so tuples ahead of the probe are not purged.
    pub fn expired(&self, probe: Timestamp, stored: Timestamp) -> bool {
        probe.saturating_sub(stored) >= self.range
    }

    /// The full-window slice `[0, range)`.
    pub fn as_slice(&self) -> SliceWindow {
        SliceWindow {
            start: TimeDelta::ZERO,
            end: self.range,
        }
    }
}

/// A half-open window slice `[start, end)` (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SliceWindow {
    /// Start window offset (inclusive).
    pub start: TimeDelta,
    /// End window offset (exclusive).
    pub end: TimeDelta,
}

impl SliceWindow {
    /// Build a slice from start/end offsets.
    pub fn new(start: TimeDelta, end: TimeDelta) -> Self {
        debug_assert!(start <= end, "slice start must not exceed end");
        SliceWindow { start, end }
    }

    /// Build a slice from whole-second offsets.
    pub fn from_secs(start: u64, end: u64) -> Self {
        SliceWindow::new(TimeDelta::from_secs(start), TimeDelta::from_secs(end))
    }

    /// Width of the slice (`end - start`).
    pub fn range(&self) -> TimeDelta {
        self.end.saturating_sub(self.start)
    }

    /// `true` if the timestamp difference `probe - stored` falls inside the
    /// slice, i.e. `start <= probe - stored < end`.
    pub fn contains_diff(&self, probe: Timestamp, stored: Timestamp) -> bool {
        let diff = probe.saturating_sub(stored);
        diff >= self.start && diff < self.end
    }

    /// `true` if a stored tuple has expired out of this slice when a probe
    /// tuple with timestamp `probe` is processed (`probe - stored >= end`).
    pub fn expired(&self, probe: Timestamp, stored: Timestamp) -> bool {
        probe.saturating_sub(stored) >= self.end
    }

    /// Merge with an adjacent later slice, producing `[self.start, next.end)`.
    pub fn merge(&self, next: &SliceWindow) -> SliceWindow {
        debug_assert_eq!(
            self.end, next.start,
            "can only merge adjacent slices in a chain"
        );
        SliceWindow {
            start: self.start,
            end: next.end,
        }
    }

    /// Split at the given offset, producing `[start, at)` and `[at, end)`.
    pub fn split_at(&self, at: TimeDelta) -> Option<(SliceWindow, SliceWindow)> {
        if at <= self.start || at >= self.end {
            return None;
        }
        Some((
            SliceWindow::new(self.start, at),
            SliceWindow::new(at, self.end),
        ))
    }
}

impl std::fmt::Display for SliceWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_half_open() {
        let w = WindowSpec::from_secs(10);
        let probe = Timestamp::from_secs(20);
        assert!(w.contains(probe, Timestamp::from_secs(11)));
        assert!(w.contains(probe, Timestamp::from_secs(20)));
        assert!(!w.contains(probe, Timestamp::from_secs(10))); // diff == 10 is out
        assert!(!w.contains(probe, Timestamp::from_secs(25))); // newer stored tuples are not in window
    }

    #[test]
    fn contains_and_expired_are_consistent_for_both_directions() {
        let w = WindowSpec::from_secs(10);
        let probe = Timestamp::from_secs(20);
        // Symmetry: the same pair checked from either side gives the same
        // verdict once each side consults its own window.
        let older = Timestamp::from_secs(15);
        assert!(w.contains(probe, older));
        // The same pair from the other side: the stored tuple is newer.
        assert!(!w.contains(older, probe));
        // Expiry is one-sided and never fires for newer stored tuples, so
        // out-of-order arrivals cannot purge state that is still needed.
        assert!(!w.expired(probe, Timestamp::from_secs(25)));
        assert!(!w.expired(probe, Timestamp::from_secs(11)));
        assert!(w.expired(probe, Timestamp::from_secs(10)));
        assert!(w.expired(probe, Timestamp::from_secs(1)));
        // In-window and expired partition the `stored <= probe` half-line.
        for s in 0..=20u64 {
            let stored = Timestamp::from_secs(s);
            assert_ne!(w.contains(probe, stored), w.expired(probe, stored));
        }
    }

    #[test]
    fn slice_contains_and_expired() {
        let s = SliceWindow::from_secs(2, 4);
        let probe = Timestamp::from_secs(10);
        assert!(!s.contains_diff(probe, Timestamp::from_secs(9))); // diff 1 < start
        assert!(s.contains_diff(probe, Timestamp::from_secs(8))); // diff 2
        assert!(s.contains_diff(probe, Timestamp::from_secs(7))); // diff 3
        assert!(!s.contains_diff(probe, Timestamp::from_secs(6))); // diff 4 == end
        assert!(s.expired(probe, Timestamp::from_secs(6)));
        assert!(!s.expired(probe, Timestamp::from_secs(7)));
    }

    #[test]
    fn full_window_is_zero_start_slice() {
        let w = WindowSpec::from_secs(5);
        let s = w.as_slice();
        assert_eq!(s.start, TimeDelta::ZERO);
        assert_eq!(s.end, TimeDelta::from_secs(5));
        assert_eq!(s.range(), TimeDelta::from_secs(5));
    }

    #[test]
    fn merge_adjacent_slices() {
        let a = SliceWindow::from_secs(0, 2);
        let b = SliceWindow::from_secs(2, 5);
        assert_eq!(a.merge(&b), SliceWindow::from_secs(0, 5));
    }

    #[test]
    fn split_inside_and_outside() {
        let s = SliceWindow::from_secs(2, 8);
        let (l, r) = s.split_at(TimeDelta::from_secs(5)).unwrap();
        assert_eq!(l, SliceWindow::from_secs(2, 5));
        assert_eq!(r, SliceWindow::from_secs(5, 8));
        assert!(s.split_at(TimeDelta::from_secs(2)).is_none());
        assert!(s.split_at(TimeDelta::from_secs(8)).is_none());
        assert!(s.split_at(TimeDelta::from_secs(9)).is_none());
    }

    #[test]
    fn display_shows_bounds() {
        assert_eq!(
            SliceWindow::from_secs(1, 3).to_string(),
            "[1.000000s, 3.000000s)"
        );
    }
}
