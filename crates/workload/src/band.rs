//! Band-join workload generation.
//!
//! Band joins (`|a.key − b.key| ≤ W`) are the paper's canonical non-equi
//! window join: no hash index applies, but the inequality pair admits a
//! value-ordered index.  This module generates streams whose tuples carry
//! the band endpoints *materialised as payload fields* so the join
//! condition stays a pure field-vs-field conjunction:
//!
//! * field [`BAND_KEY_FIELD`] — the band attribute `key`,
//! * field [`VALUE_FIELD`](crate::VALUE_FIELD) — the filtered attribute,
//! * field [`BAND_LO_FIELD`] — `key − W`,
//! * field [`BAND_HI_FIELD`] — `key + W`.
//!
//! [`band_condition`] then expresses the band from both sides, so whichever
//! stream a [`JoinState`](streamkit::join_state::JoinState) stores, the
//! classifier finds a two-sided band over the stored `key` field.
//!
//! The expected fraction of tuple pairs within the band is
//! `(2W + 1) / |domain|` for uniform keys; [`BandGenerator::key_domain`]
//! inverts that, sizing the domain so the configured `sel_join` becomes the
//! empirical band selectivity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamkit::predicate::{CmpOp, JoinCondition};
use streamkit::tuple::{StreamId, Tuple, Value};
use streamkit::Timestamp;

use crate::generator::{WorkloadConfig, VALUE_DOMAIN};
use crate::poisson::arrival_times;

/// Index of the band attribute in generated tuples.
pub const BAND_KEY_FIELD: usize = 0;
/// Index of the materialised lower band endpoint (`key − W`).
pub const BAND_LO_FIELD: usize = 2;
/// Index of the materialised upper band endpoint (`key + W`).
pub const BAND_HI_FIELD: usize = 3;

/// The band-join condition `|left.key − right.key| ≤ W`, written as a
/// conjunction of field-vs-field inequalities over the materialised
/// endpoints:
///
/// ```text
/// left.key ≥ right.lo ∧ left.key ≤ right.hi     (left stored: band on left.key)
/// ∧ left.lo ≤ right.key ∧ left.hi ≥ right.key   (right stored: band on right.key)
/// ```
///
/// The two halves are logically equivalent (both say the keys differ by at
/// most `W`), but spelling both out lets `band_bounds` classify a two-sided
/// band over the *stored* key field for either probe direction.
pub fn band_condition() -> JoinCondition {
    let theta = |left_field, op, right_field| JoinCondition::Theta {
        left_field,
        op,
        right_field,
    };
    JoinCondition::And(
        Box::new(JoinCondition::And(
            Box::new(theta(BAND_KEY_FIELD, CmpOp::Ge, BAND_LO_FIELD)),
            Box::new(theta(BAND_KEY_FIELD, CmpOp::Le, BAND_HI_FIELD)),
        )),
        Box::new(JoinCondition::And(
            Box::new(theta(BAND_LO_FIELD, CmpOp::Le, BAND_KEY_FIELD)),
            Box::new(theta(BAND_HI_FIELD, CmpOp::Ge, BAND_KEY_FIELD)),
        )),
    )
}

/// Generates band-join streams: Poisson arrivals with 4-field tuples
/// `[key, value, key − W, key + W]`.
#[derive(Debug, Clone)]
pub struct BandGenerator {
    config: WorkloadConfig,
    width: i64,
}

impl BandGenerator {
    /// Wrap a configuration and a band half-width `W ≥ 0`.  The config's
    /// `sel_join` is reinterpreted as the *band* selectivity.
    pub fn new(config: WorkloadConfig, width: i64) -> Self {
        BandGenerator { config, width }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The band half-width `W`.
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Size of the key domain implementing the configured band selectivity:
    /// `|domain| = (2W + 1) / S⋈`, clamped to at least `2W + 1` so the band
    /// never degenerates to the full domain.
    pub fn key_domain(&self) -> i64 {
        let span = 2 * self.width + 1;
        if self.config.sel_join <= 0.0 {
            return i64::MAX / 4;
        }
        ((span as f64 / self.config.sel_join).round() as i64).max(span)
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.width < 0 {
            return Err("band width must be non-negative".to_string());
        }
        self.config.validate()
    }

    /// Generate one stream's tuples in timestamp order.
    pub fn generate(&self, stream: StreamId) -> Vec<Tuple> {
        let sub_seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.0 as u64 + 1);
        let times = arrival_times(self.config.rate, self.config.duration_secs, sub_seed);
        let mut rng = StdRng::seed_from_u64(sub_seed ^ 0xABCD_EF01);
        let keys = self.key_domain();
        times
            .into_iter()
            .map(|ts| self.tuple_at(ts, stream, &mut rng, keys))
            .collect()
    }

    /// Generate both streams: `(stream A, stream B)`.
    pub fn generate_pair(&self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.generate(StreamId::A), self.generate(StreamId::B))
    }

    fn tuple_at(&self, ts: Timestamp, stream: StreamId, rng: &mut StdRng, keys: i64) -> Tuple {
        let key = rng.gen_range(0..keys);
        let value = rng.gen_range(0..VALUE_DOMAIN);
        Tuple::new(
            ts,
            stream,
            vec![
                Value::Int(key),
                Value::Int(value),
                Value::Int(key - self.width),
                Value::Int(key + self.width),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::predicate::band_bounds;

    fn generator() -> BandGenerator {
        BandGenerator::new(
            WorkloadConfig {
                rate: 100.0,
                duration_secs: 30.0,
                sel_join: 0.05,
                sel_filter: 0.5,
                seed: 13,
                key_dist: Default::default(),
            },
            12,
        )
    }

    #[test]
    fn key_domain_implements_band_selectivity() {
        // (2·12 + 1) / 0.05 = 500 keys.
        assert_eq!(generator().key_domain(), 500);
        let mut g = generator();
        g.config.sel_join = 1.0; // clamped: never smaller than the band span
        assert_eq!(g.key_domain(), 25);
        g.config.sel_join = 0.0;
        assert!(g.key_domain() > 1_000_000);
    }

    #[test]
    fn condition_matches_exactly_the_band_pairs() {
        let g = generator();
        let (a, b) = g.generate_pair();
        let cond = band_condition();
        let key_of = |t: &Tuple| match t.value(BAND_KEY_FIELD) {
            Some(&Value::Int(k)) => k,
            other => panic!("band key must be an int, got {other:?}"),
        };
        let mut matches = 0usize;
        let sample_a: Vec<_> = a.iter().step_by(5).collect();
        let sample_b: Vec<_> = b.iter().step_by(5).collect();
        for x in &sample_a {
            for y in &sample_b {
                let mut n = 0u64;
                let hit = cond.eval_counted(x, y, &mut n);
                assert_eq!(hit, (key_of(x) - key_of(y)).abs() <= g.width());
                if hit {
                    matches += 1;
                }
            }
        }
        let sel = matches as f64 / (sample_a.len() * sample_b.len()) as f64;
        assert!(
            (sel - 0.05).abs() < 0.02,
            "band selectivity {sel} too far from 0.05"
        );
    }

    #[test]
    fn condition_classifies_as_a_two_sided_band_from_both_sides() {
        let cond = band_condition();
        for stored_is_left in [true, false] {
            let spec = band_bounds(&cond, stored_is_left).expect("band must classify");
            assert_eq!(spec.stored_field, BAND_KEY_FIELD);
            assert!(spec.is_two_sided(), "stored_is_left={stored_is_left}");
            assert_eq!(spec.lower, Some((BAND_LO_FIELD, true)));
            assert_eq!(spec.upper, Some((BAND_HI_FIELD, true)));
        }
    }

    #[test]
    fn streams_are_deterministic_and_carry_materialised_endpoints() {
        let g = generator();
        let a1 = g.generate(StreamId::A);
        let a2 = g.generate(StreamId::A);
        let b = g.generate(StreamId::B);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(a1.windows(2).all(|w| w[1].ts >= w[0].ts));
        let domain = g.key_domain();
        for t in a1.iter().chain(&b) {
            let (Some(&Value::Int(k)), Some(&Value::Int(lo)), Some(&Value::Int(hi))) = (
                t.value(BAND_KEY_FIELD),
                t.value(BAND_LO_FIELD),
                t.value(BAND_HI_FIELD),
            ) else {
                panic!("band tuple fields must be ints");
            };
            assert!((0..domain).contains(&k));
            assert_eq!(lo, k - g.width());
            assert_eq!(hi, k + g.width());
        }
    }

    #[test]
    fn validation_guards_band_parameters() {
        assert!(generator().validate().is_ok());
        let mut g = generator();
        g.width = -1;
        assert!(g.validate().is_err());
        let mut g = generator();
        g.config.rate = 0.0;
        assert!(g.validate().is_err());
    }
}
