//! Query churn schedules: queries entering and leaving the system by a
//! Poisson process.
//!
//! The paper's chain maintenance (Section 5.3) exists because real workloads
//! are not fixed at plan time — "queries may enter or leave the system".
//! This module generates reproducible churn schedules over a base scenario:
//! churn *events* arrive as a Poisson process (like the tuples themselves,
//! Section 7.1), and each event either registers a query with a window drawn
//! from a pool or deregisters a previously churned query.  The base
//! scenario's own queries — in particular the one with the largest window —
//! are never touched, so the chain's coverage stays constant and a live
//! migration is always a pure merge/split re-slicing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamkit::{TimeDelta, Timestamp};

use crate::poisson::PoissonArrivals;

/// Configuration of a churn schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Mean seconds between churn events (Poisson).  Non-finite or
    /// non-positive means no churn.
    pub mean_interval_secs: f64,
    /// Schedule horizon: no event at or after this time.
    pub duration_secs: f64,
    /// Whole-second windows churned queries may use.  Must be distinct from
    /// each other and from the base workload's windows, and smaller than the
    /// base workload's largest window (so churn never changes coverage).
    pub window_pool_secs: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// Name churned queries use for a pool window (`C<secs>`): one name per
    /// window, reused across instances of that window.
    pub fn query_name(window_secs: u64) -> String {
        format!("C{window_secs}")
    }
}

/// What one churn event does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnAction {
    /// Register a query with the given pool window.
    Add {
        /// Query name ([`ChurnConfig::query_name`]).
        name: String,
        /// Window in whole seconds.
        window_secs: u64,
    },
    /// Deregister a previously added query.
    Remove {
        /// Query name.
        name: String,
    },
}

/// One scheduled churn event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEvent {
    /// When the event fires (input tuples up to here are processed first).
    pub at: Timestamp,
    /// The workload change.
    pub action: ChurnAction,
}

impl ChurnEvent {
    /// The window of an added query, as a [`TimeDelta`].
    pub fn window(&self) -> Option<TimeDelta> {
        match &self.action {
            ChurnAction::Add { window_secs, .. } => Some(TimeDelta::from_secs(*window_secs)),
            ChurnAction::Remove { .. } => None,
        }
    }
}

/// Generate the deterministic churn schedule for a configuration.
///
/// Events alternate stochastically between adds and removes: with no churned
/// query active the event must add, with the pool exhausted it must remove,
/// otherwise a fair coin decides.  Windows are drawn uniformly from the
/// currently inactive part of the pool.
pub fn churn_schedule(config: &ChurnConfig) -> Vec<ChurnEvent> {
    if !config.mean_interval_secs.is_finite()
        || config.mean_interval_secs <= 0.0
        || config.window_pool_secs.is_empty()
    {
        return Vec::new();
    }
    let rate = 1.0 / config.mean_interval_secs;
    let arrivals = PoissonArrivals::new(rate, config.seed ^ 0xC0FF_EE00)
        .take_while(|ts| ts.as_secs_f64() < config.duration_secs);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
    let mut inactive: Vec<u64> = config.window_pool_secs.clone();
    let mut active: Vec<u64> = Vec::new();
    let mut events = Vec::new();
    for at in arrivals {
        let add = if active.is_empty() {
            true
        } else if inactive.is_empty() {
            false
        } else {
            rng.gen_range(0..2) == 0
        };
        let action = if add {
            let idx = rng.gen_range(0..inactive.len());
            let window_secs = inactive.swap_remove(idx);
            active.push(window_secs);
            ChurnAction::Add {
                name: ChurnConfig::query_name(window_secs),
                window_secs,
            }
        } else {
            let idx = rng.gen_range(0..active.len());
            let window_secs = active.swap_remove(idx);
            inactive.push(window_secs);
            ChurnAction::Remove {
                name: ChurnConfig::query_name(window_secs),
            }
        };
        events.push(ChurnEvent { at, action });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mean: f64) -> ChurnConfig {
        ChurnConfig {
            mean_interval_secs: mean,
            duration_secs: 120.0,
            window_pool_secs: vec![4, 7, 13, 17],
            seed: 9,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_respects_the_horizon() {
        let a = churn_schedule(&config(10.0));
        let b = churn_schedule(&config(10.0));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|e| e.at.as_secs_f64() < 120.0));
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // ~12 events expected at one per 10 s over 120 s.
        assert!((4..=30).contains(&a.len()), "unexpected count {}", a.len());
    }

    #[test]
    fn adds_and_removes_stay_consistent() {
        let events = churn_schedule(&config(3.0));
        let mut active: Vec<String> = Vec::new();
        for event in &events {
            match &event.action {
                ChurnAction::Add { name, window_secs } => {
                    assert!(!active.contains(name), "double add of {name}");
                    assert!([4, 7, 13, 17].contains(window_secs));
                    assert_eq!(event.window(), Some(TimeDelta::from_secs(*window_secs)));
                    active.push(name.clone());
                    assert!(active.len() <= 4);
                }
                ChurnAction::Remove { name } => {
                    let pos = active.iter().position(|n| n == name);
                    assert!(pos.is_some(), "remove of inactive {name}");
                    active.remove(pos.unwrap());
                    assert_eq!(event.window(), None);
                }
            }
        }
        // The first event is always an add.
        assert!(matches!(events[0].action, ChurnAction::Add { .. }));
    }

    #[test]
    fn no_churn_configs_produce_empty_schedules() {
        assert!(churn_schedule(&config(0.0)).is_empty());
        assert!(churn_schedule(&config(f64::INFINITY)).is_empty());
        let mut empty_pool = config(5.0);
        empty_pool.window_pool_secs.clear();
        assert!(churn_schedule(&empty_pool).is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = churn_schedule(&config(5.0));
        let mut other = config(5.0);
        other.seed = 10;
        let b = churn_schedule(&other);
        assert_ne!(a, b);
    }
}
