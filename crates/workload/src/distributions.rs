//! Query-window distributions (Tables 3 and 4 of the paper).

use streamkit::TimeDelta;

/// The window-size distributions used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowDistribution {
    /// Most windows are small (Table 3: 5/10/30 s; Table 4: 1..10, 20, 30 s).
    MostlySmall,
    /// Windows spread evenly up to 30 s (Table 3: 10/20/30; Table 4: 2.5-step).
    Uniform,
    /// Most windows are large (Table 3: 20/25/30 s).
    MostlyLarge,
    /// Half the windows are small, half are large (Table 4: 1..6, 25..30 s).
    SmallLarge,
}

impl WindowDistribution {
    /// All distributions, for sweeps.
    pub const ALL: [WindowDistribution; 4] = [
        WindowDistribution::MostlySmall,
        WindowDistribution::Uniform,
        WindowDistribution::MostlyLarge,
        WindowDistribution::SmallLarge,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            WindowDistribution::MostlySmall => "Mostly-Small",
            WindowDistribution::Uniform => "Uniform",
            WindowDistribution::MostlyLarge => "Mostly-Large",
            WindowDistribution::SmallLarge => "Small-Large",
        }
    }

    /// Window sizes (seconds) for `n` queries.  The 3-query values match
    /// Table 3 exactly and the 12-query values match Table 4 exactly; other
    /// query counts extend the same pattern over the same `[0, 30]`-second
    /// range, keeping windows distinct.
    pub fn windows_secs(&self, n: usize) -> Vec<f64> {
        assert!(n >= 1, "at least one query window is required");
        match (self, n) {
            (WindowDistribution::MostlySmall, 3) => vec![5.0, 10.0, 30.0],
            (WindowDistribution::Uniform, 3) => vec![10.0, 20.0, 30.0],
            (WindowDistribution::MostlyLarge, 3) => vec![20.0, 25.0, 30.0],
            (WindowDistribution::SmallLarge, 3) => vec![5.0, 25.0, 30.0],
            (WindowDistribution::MostlySmall, 12) => vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 20.0, 30.0,
            ],
            (WindowDistribution::Uniform, 12) => vec![
                2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0,
            ],
            (WindowDistribution::SmallLarge, 12) => vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 25.0, 26.0, 27.0, 28.0, 29.0, 30.0,
            ],
            (WindowDistribution::Uniform, n) => {
                (1..=n).map(|i| 30.0 * i as f64 / n as f64).collect()
            }
            (WindowDistribution::MostlySmall, n) => {
                // All but the last two windows spread over [1, 10]; the last
                // two are 20 and 30.
                if n <= 2 {
                    return vec![20.0, 30.0][..n].to_vec();
                }
                let small = n - 2;
                let mut w: Vec<f64> = (1..=small)
                    .map(|i| 1.0 + 9.0 * (i as f64 - 1.0) / (small.max(2) - 1) as f64)
                    .collect();
                w.push(20.0);
                w.push(30.0);
                w
            }
            (WindowDistribution::MostlyLarge, n) => {
                // The first two windows are 5 and 10; the rest spread over
                // [20, 30].
                if n <= 2 {
                    return vec![5.0, 10.0][..n].to_vec();
                }
                let large = n - 2;
                let mut w = vec![5.0, 10.0];
                w.extend(
                    (1..=large).map(|i| 20.0 + 10.0 * (i as f64 - 1.0) / (large.max(2) - 1) as f64),
                );
                w
            }
            (WindowDistribution::SmallLarge, n) => {
                // Half in [1, 6], half in [25, 30].
                let half = n / 2;
                let rest = n - half;
                let mut w: Vec<f64> = (1..=half)
                    .map(|i| 1.0 + 5.0 * (i as f64 - 1.0) / (half.max(2) - 1) as f64)
                    .collect();
                w.extend(
                    (1..=rest).map(|i| 25.0 + 5.0 * (i as f64 - 1.0) / (rest.max(2) - 1) as f64),
                );
                w
            }
        }
    }

    /// Window sizes as [`TimeDelta`]s.
    pub fn windows(&self, n: usize) -> Vec<TimeDelta> {
        self.windows_secs(n)
            .into_iter()
            .map(TimeDelta::from_secs_f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strictly_increasing(w: &[f64]) -> bool {
        w.windows(2).all(|p| p[1] > p[0])
    }

    #[test]
    fn three_query_distributions_match_table_3() {
        assert_eq!(
            WindowDistribution::MostlySmall.windows_secs(3),
            vec![5.0, 10.0, 30.0]
        );
        assert_eq!(
            WindowDistribution::Uniform.windows_secs(3),
            vec![10.0, 20.0, 30.0]
        );
        assert_eq!(
            WindowDistribution::MostlyLarge.windows_secs(3),
            vec![20.0, 25.0, 30.0]
        );
    }

    #[test]
    fn twelve_query_distributions_match_table_4() {
        assert_eq!(
            WindowDistribution::Uniform.windows_secs(12),
            vec![2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0]
        );
        assert_eq!(
            WindowDistribution::MostlySmall.windows_secs(12),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 20.0, 30.0]
        );
        assert_eq!(
            WindowDistribution::SmallLarge.windows_secs(12),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 25.0, 26.0, 27.0, 28.0, 29.0, 30.0]
        );
    }

    #[test]
    fn generalised_counts_are_distinct_increasing_and_bounded() {
        for dist in WindowDistribution::ALL {
            for n in [1usize, 2, 3, 6, 12, 24, 36] {
                let w = dist.windows_secs(n);
                assert_eq!(w.len(), n, "{} n={n}", dist.name());
                assert!(
                    strictly_increasing(&w),
                    "{} n={n}: {w:?} not strictly increasing",
                    dist.name()
                );
                assert!(w.iter().all(|&x| x > 0.0 && x <= 30.0));
            }
        }
    }

    #[test]
    fn windows_convert_to_time_deltas() {
        let w = WindowDistribution::Uniform.windows(12);
        assert_eq!(w.len(), 12);
        assert_eq!(w[0], TimeDelta::from_secs_f64(2.5));
        assert_eq!(w[11], TimeDelta::from_secs(30));
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(WindowDistribution::MostlySmall.name(), "Mostly-Small");
        assert_eq!(WindowDistribution::SmallLarge.name(), "Small-Large");
    }
}
