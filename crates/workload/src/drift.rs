//! Piecewise-drifting workloads: scheduled rate / selectivity / key-skew
//! shifts at stream timestamps.
//!
//! A [`DriftProfile`] is a base [`WorkloadConfig`] plus an ordered list of
//! [`DriftPhase`]s.  Each phase pins the arrival rate, join selectivity and
//! key distribution from its start timestamp until the next phase (the last
//! phase runs to the base duration).  Within a phase, generation works
//! exactly like [`StreamGenerator`] — Poisson arrivals, key-domain-driven
//! `S⋈`, a filtered value attribute — with a phase-distinct sub-seed, and
//! the segment is shifted to the phase's start time.
//!
//! This is the input side of the adaptive re-optimization experiments: a
//! statically planned chain is optimal for exactly one phase, and the
//! supervisor's drift detectors have to notice every transition.

use streamkit::tuple::{StreamId, Tuple};
use streamkit::TimeDelta;

use crate::generator::{KeyDistribution, StreamGenerator, WorkloadConfig};

/// One stationary segment of a drifting workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPhase {
    /// Stream-time second this phase starts at (the first phase must start
    /// at 0).
    pub at_secs: f64,
    /// Arrival rate per stream during the phase, tuples/second.
    pub rate: f64,
    /// Join selectivity `S⋈` during the phase.
    pub sel_join: f64,
    /// Join-key distribution during the phase.
    pub key_dist: KeyDistribution,
}

impl DriftPhase {
    /// A phase taking its rate / selectivity / distribution from `config`.
    pub fn from_config(at_secs: f64, config: &WorkloadConfig) -> Self {
        DriftPhase {
            at_secs,
            rate: config.rate,
            sel_join: config.sel_join,
            key_dist: config.key_dist,
        }
    }
}

/// A piecewise-stationary workload: scheduled drift over a base
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftProfile {
    base: WorkloadConfig,
    phases: Vec<DriftPhase>,
}

impl DriftProfile {
    /// Build and validate a profile.  Phases must be non-empty, start at 0,
    /// have strictly increasing start times inside the base duration, and
    /// each phase must form a valid [`WorkloadConfig`] on its own.
    pub fn new(base: WorkloadConfig, phases: Vec<DriftPhase>) -> Result<Self, String> {
        if phases.is_empty() {
            return Err("a drift profile needs at least one phase".to_string());
        }
        if phases[0].at_secs != 0.0 {
            return Err(format!(
                "the first phase must start at 0, not {}",
                phases[0].at_secs
            ));
        }
        let mut prev = -1.0;
        for (i, phase) in phases.iter().enumerate() {
            if phase.at_secs <= prev {
                return Err(format!(
                    "phase {i} starts at {} which is not after {prev}",
                    phase.at_secs
                ));
            }
            if phase.at_secs >= base.duration_secs {
                return Err(format!(
                    "phase {i} starts at {} beyond the duration {}",
                    phase.at_secs, base.duration_secs
                ));
            }
            prev = phase.at_secs;
        }
        let profile = DriftProfile { base, phases };
        for i in 0..profile.phases.len() {
            profile
                .phase_config(i)
                .validate()
                .map_err(|e| format!("phase {i}: {e}"))?;
        }
        Ok(profile)
    }

    /// A control profile with no drift: one phase covering the whole run.
    pub fn stationary(base: WorkloadConfig) -> Self {
        let phases = vec![DriftPhase::from_config(0.0, &base)];
        DriftProfile { base, phases }
    }

    /// The base configuration (duration, filter selectivity, seed).
    pub fn base(&self) -> &WorkloadConfig {
        &self.base
    }

    /// The scheduled phases, in start order.
    pub fn phases(&self) -> &[DriftPhase] {
        &self.phases
    }

    /// `true` when the profile actually drifts (more than one phase).
    pub fn drifts(&self) -> bool {
        self.phases.len() > 1
    }

    /// The phase transition timestamps (excluding 0), in seconds — the
    /// moments an adaptive executor should notice.
    pub fn transitions(&self) -> Vec<f64> {
        self.phases[1..].iter().map(|p| p.at_secs).collect()
    }

    /// End of phase `i`, in seconds.
    fn phase_end(&self, i: usize) -> f64 {
        self.phases
            .get(i + 1)
            .map(|p| p.at_secs)
            .unwrap_or(self.base.duration_secs)
    }

    /// The phase active at stream-time `secs`.
    pub fn phase_at(&self, secs: f64) -> &DriftPhase {
        let idx = self
            .phases
            .partition_point(|p| p.at_secs <= secs)
            .saturating_sub(1);
        &self.phases[idx]
    }

    /// The stand-alone [`WorkloadConfig`] describing phase `i` (its duration
    /// is the phase span; the seed is phase-distinct).
    pub fn phase_config(&self, i: usize) -> WorkloadConfig {
        let phase = &self.phases[i];
        WorkloadConfig {
            rate: phase.rate,
            duration_secs: self.phase_end(i) - phase.at_secs,
            sel_join: phase.sel_join,
            sel_filter: self.base.sel_filter,
            seed: self
                .base
                .seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(i as u64),
            key_dist: phase.key_dist,
        }
    }

    /// Generate one stream's tuples across all phases, in timestamp order.
    pub fn generate(&self, stream: StreamId) -> Vec<Tuple> {
        let mut out = Vec::new();
        for i in 0..self.phases.len() {
            let offset = TimeDelta::from_secs_f64(self.phases[i].at_secs);
            let segment = StreamGenerator::new(self.phase_config(i)).generate(stream);
            out.extend(segment.into_iter().map(|mut t| {
                t.ts = t.ts + offset;
                t
            }));
        }
        out
    }

    /// Generate both streams: `(stream A, stream B)`.
    pub fn generate_pair(&self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.generate(StreamId::A), self.generate(StreamId::B))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::JOIN_KEY_FIELD;
    use streamkit::tuple::Value;

    fn base() -> WorkloadConfig {
        WorkloadConfig {
            rate: 50.0,
            duration_secs: 60.0,
            sel_join: 0.1,
            sel_filter: 1.0,
            seed: 7,
            key_dist: KeyDistribution::Uniform,
        }
    }

    fn two_phase() -> DriftProfile {
        DriftProfile::new(
            base(),
            vec![
                DriftPhase {
                    at_secs: 0.0,
                    rate: 50.0,
                    sel_join: 0.1,
                    key_dist: KeyDistribution::Uniform,
                },
                DriftPhase {
                    at_secs: 30.0,
                    rate: 150.0,
                    sel_join: 0.002,
                    key_dist: KeyDistribution::Uniform,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_malformed_schedules() {
        let phase = |at| DriftPhase {
            at_secs: at,
            rate: 10.0,
            sel_join: 0.1,
            key_dist: KeyDistribution::Uniform,
        };
        assert!(DriftProfile::new(base(), vec![]).is_err());
        assert!(DriftProfile::new(base(), vec![phase(5.0)]).is_err());
        assert!(DriftProfile::new(base(), vec![phase(0.0), phase(0.0)]).is_err());
        assert!(DriftProfile::new(base(), vec![phase(0.0), phase(90.0)]).is_err());
        let mut bad_rate = phase(30.0);
        bad_rate.rate = 0.0;
        assert!(DriftProfile::new(base(), vec![phase(0.0), bad_rate]).is_err());
        assert!(DriftProfile::new(base(), vec![phase(0.0), phase(30.0)]).is_ok());
    }

    #[test]
    fn stationary_profile_matches_the_plain_generator() {
        let profile = DriftProfile::stationary(base());
        assert!(!profile.drifts());
        assert!(profile.transitions().is_empty());
        // Same arrivals-and-keys machinery, just a phase-derived seed.
        let direct = StreamGenerator::new(profile.phase_config(0)).generate(StreamId::A);
        assert_eq!(profile.generate(StreamId::A), direct);
    }

    #[test]
    fn phases_shift_rate_and_key_domain_at_the_boundary() {
        let profile = two_phase();
        assert!(profile.drifts());
        assert_eq!(profile.transitions(), vec![30.0]);
        assert_eq!(profile.phase_at(0.0).rate, 50.0);
        assert_eq!(profile.phase_at(29.9).sel_join, 0.1);
        assert_eq!(profile.phase_at(30.0).sel_join, 0.002);
        assert_eq!(profile.phase_at(59.0).rate, 150.0);
        let a = profile.generate(StreamId::A);
        assert!(a.windows(2).all(|w| w[1].ts >= w[0].ts), "sorted output");
        let (early, late): (Vec<_>, Vec<_>) = a.iter().partition(|t| t.ts.as_secs_f64() < 30.0);
        // Rate tripled: both halves cover 30 s of stream time.
        let observed_ratio = late.len() as f64 / early.len() as f64;
        assert!(
            (2.0..=4.5).contains(&observed_ratio),
            "rate ratio {observed_ratio} not near 3"
        );
        // Key domain widened from 10 to 500 at the transition.
        let max_key = |ts: &[&Tuple]| {
            ts.iter()
                .filter_map(|t| match t.value(JOIN_KEY_FIELD) {
                    Some(&Value::Int(k)) => Some(k),
                    _ => None,
                })
                .max()
                .unwrap()
        };
        assert!(max_key(&early) < 10);
        assert!(max_key(&late) >= 100);
    }

    #[test]
    fn generation_is_deterministic_and_phase_seeds_differ() {
        let profile = two_phase();
        assert_eq!(profile.generate(StreamId::A), profile.generate(StreamId::A));
        assert_ne!(profile.generate(StreamId::A), profile.generate(StreamId::B));
        assert_ne!(
            profile.phase_config(0).seed,
            profile.phase_config(1).seed,
            "phase segments must not replay the same arrivals"
        );
    }
}
