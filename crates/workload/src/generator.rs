//! Stream tuple generation with controllable selectivities.
//!
//! Each generated tuple has two payload attributes:
//!
//! * field [`JOIN_KEY_FIELD`] — the join attribute (the paper's
//!   `LocationId`), drawn uniformly from a key domain whose size sets the
//!   equi-join selectivity `S⋈ ≈ 1 / |domain|`,
//! * field [`VALUE_FIELD`] — the filtered attribute (the paper's `Value`),
//!   drawn uniformly from `[0, VALUE_DOMAIN)`, so a predicate
//!   `value < Sσ · VALUE_DOMAIN` has selectivity `Sσ`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamkit::tuple::{StreamId, Tuple, Value};
use streamkit::{CmpOp, Predicate, Timestamp};

use crate::poisson::arrival_times;

/// Index of the join-key attribute in generated tuples.
pub const JOIN_KEY_FIELD: usize = 0;
/// Index of the filtered value attribute in generated tuples.
pub const VALUE_FIELD: usize = 1;
/// Size of the value domain used for filter-selectivity control.
pub const VALUE_DOMAIN: i64 = 10_000;

/// Distribution of the join-key attribute over the key domain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeyDistribution {
    /// Every key equally likely — the paper's setup, where the domain size
    /// directly implements `S⋈ ≈ 1 / |domain|`.
    #[default]
    Uniform,
    /// Zipf-distributed keys: key `k ∈ [0, |domain|)` has probability
    /// proportional to `1 / (k + 1)^exponent`.  Used by the skew-aware
    /// sharding experiments; note the empirical join selectivity then
    /// exceeds `1 / |domain|` (heavy keys match each other often).
    Zipf {
        /// The skew exponent `s` (1.0–1.5 covers typical workloads; the
        /// skew benchmark uses 1.2).
        exponent: f64,
    },
}

/// Largest key domain for which a Zipf CDF table is precomputed; larger
/// domains (e.g. from `sel_join = 0`) are rejected by validation.
pub const MAX_ZIPF_DOMAIN: i64 = 1 << 20;

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Arrival rate per stream, tuples/second.
    pub rate: f64,
    /// Stream duration in seconds.
    pub duration_secs: f64,
    /// Join selectivity `S⋈` (implemented as a key domain of size `1/S⋈`).
    pub sel_join: f64,
    /// Filter selectivity `Sσ` of the generated selection predicate.
    pub sel_filter: f64,
    /// Base RNG seed; streams A and B derive distinct sub-seeds.
    pub seed: u64,
    /// Distribution of the join key over its domain.
    pub key_dist: KeyDistribution,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            rate: 40.0,
            duration_secs: 90.0,
            sel_join: 0.1,
            sel_filter: 0.5,
            seed: 7,
            key_dist: KeyDistribution::Uniform,
        }
    }
}

impl WorkloadConfig {
    /// Size of the join-key domain implementing the configured `S⋈`.
    pub fn key_domain(&self) -> i64 {
        if self.sel_join <= 0.0 {
            i64::MAX / 2
        } else {
            ((1.0 / self.sel_join).round() as i64).max(1)
        }
    }

    /// The selection predicate with the configured selectivity `Sσ`
    /// (`value < Sσ · VALUE_DOMAIN`).
    pub fn filter_predicate(&self) -> Predicate {
        let threshold = (self.sel_filter * VALUE_DOMAIN as f64).round() as i64;
        Predicate::cmp(VALUE_FIELD, CmpOp::Lt, Value::Int(threshold))
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate <= 0.0 {
            return Err("rate must be positive".to_string());
        }
        if self.duration_secs <= 0.0 {
            return Err("duration must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.sel_join) {
            return Err("join selectivity must be in [0, 1]".to_string());
        }
        if !(0.0..=1.0).contains(&self.sel_filter) {
            return Err("filter selectivity must be in [0, 1]".to_string());
        }
        if let KeyDistribution::Zipf { exponent } = self.key_dist {
            if !exponent.is_finite() || exponent <= 0.0 {
                return Err("Zipf exponent must be positive and finite".to_string());
            }
            if self.key_domain() > MAX_ZIPF_DOMAIN {
                return Err(format!(
                    "Zipf keys need a bounded domain (≤ {MAX_ZIPF_DOMAIN}); \
                     raise sel_join above {:.e}",
                    1.0 / MAX_ZIPF_DOMAIN as f64
                ));
            }
        }
        Ok(())
    }

    /// Cumulative distribution over the key domain for Zipf sampling, or
    /// `None` when keys are uniform.
    fn key_cdf(&self) -> Option<Vec<f64>> {
        let KeyDistribution::Zipf { exponent } = self.key_dist else {
            return None;
        };
        let domain = self.key_domain().min(MAX_ZIPF_DOMAIN) as usize;
        let mut cdf = Vec::with_capacity(domain);
        let mut total = 0.0_f64;
        for k in 0..domain {
            total += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Some(cdf)
    }
}

/// Generates per-stream tuple vectors for a [`WorkloadConfig`].
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    config: WorkloadConfig,
}

impl StreamGenerator {
    /// Wrap a configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        StreamGenerator { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generate one stream's tuples in timestamp order.
    pub fn generate(&self, stream: StreamId) -> Vec<Tuple> {
        let sub_seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.0 as u64 + 1);
        let times = arrival_times(self.config.rate, self.config.duration_secs, sub_seed);
        let mut rng = StdRng::seed_from_u64(sub_seed ^ 0xABCD_EF01);
        let keys = self.config.key_domain();
        let cdf = self.config.key_cdf();
        times
            .into_iter()
            .map(|ts| self.tuple_at(ts, stream, &mut rng, keys, cdf.as_deref()))
            .collect()
    }

    /// Generate both streams: `(stream A, stream B)`.
    pub fn generate_pair(&self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.generate(StreamId::A), self.generate(StreamId::B))
    }

    fn tuple_at(
        &self,
        ts: Timestamp,
        stream: StreamId,
        rng: &mut StdRng,
        keys: i64,
        cdf: Option<&[f64]>,
    ) -> Tuple {
        let key = match cdf {
            None => rng.gen_range(0..keys),
            Some(cdf) => {
                let u = rng.gen_range(0.0f64..1.0);
                cdf.partition_point(|&c| c < u) as i64
            }
        };
        let value = rng.gen_range(0..VALUE_DOMAIN);
        Tuple::new(ts, stream, vec![Value::Int(key), Value::Int(value)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            rate: 100.0,
            duration_secs: 30.0,
            sel_join: 0.1,
            sel_filter: 0.2,
            seed: 11,
            key_dist: KeyDistribution::Uniform,
        }
    }

    fn zipf_config(exponent: f64) -> WorkloadConfig {
        let mut c = config();
        c.sel_join = 0.002; // 500-key domain, same as the skew benchmark
        c.key_dist = KeyDistribution::Zipf { exponent };
        c
    }

    #[test]
    fn key_domain_implements_join_selectivity() {
        assert_eq!(config().key_domain(), 10);
        let mut c = config();
        c.sel_join = 0.025;
        assert_eq!(c.key_domain(), 40);
        c.sel_join = 0.0;
        assert!(c.key_domain() > 1_000_000);
    }

    #[test]
    fn filter_predicate_has_requested_selectivity() {
        let gen = StreamGenerator::new(config());
        let tuples = gen.generate(StreamId::A);
        let pred = config().filter_predicate();
        let passed = tuples.iter().filter(|t| pred.eval(t)).count() as f64;
        let frac = passed / tuples.len() as f64;
        assert!(
            (frac - 0.2).abs() < 0.06,
            "selectivity {frac} too far from 0.2"
        );
    }

    #[test]
    fn empirical_join_selectivity_matches_key_domain() {
        let gen = StreamGenerator::new(config());
        let (a, b) = gen.generate_pair();
        let mut matches = 0usize;
        let sample_a: Vec<_> = a.iter().step_by(7).collect();
        let sample_b: Vec<_> = b.iter().step_by(7).collect();
        for x in &sample_a {
            for y in &sample_b {
                if x.value(JOIN_KEY_FIELD) == y.value(JOIN_KEY_FIELD) {
                    matches += 1;
                }
            }
        }
        let sel = matches as f64 / (sample_a.len() * sample_b.len()) as f64;
        assert!(
            (sel - 0.1).abs() < 0.03,
            "join selectivity {sel} too far from 0.1"
        );
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_distinct_across_streams() {
        let gen = StreamGenerator::new(config());
        let a1 = gen.generate(StreamId::A);
        let a2 = gen.generate(StreamId::A);
        let b = gen.generate(StreamId::B);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(a1.windows(2).all(|w| w[1].ts >= w[0].ts));
        assert!(a1.iter().all(|t| t.stream == StreamId::A));
        assert!(b.iter().all(|t| t.stream == StreamId::B));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = config();
        assert!(c.validate().is_ok());
        c.rate = 0.0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.sel_filter = 1.5;
        assert!(c.validate().is_err());
        let mut c = config();
        c.duration_secs = -1.0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.sel_join = -0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zipf_keys_are_deterministic_and_skewed_toward_low_ranks() {
        let gen = StreamGenerator::new(zipf_config(1.2));
        let a1 = gen.generate(StreamId::A);
        let a2 = gen.generate(StreamId::A);
        assert_eq!(a1, a2);
        let domain = zipf_config(1.2).key_domain();
        assert_eq!(domain, 500);
        let mut counts = vec![0usize; domain as usize];
        for t in &a1 {
            let Some(&Value::Int(k)) = t.value(JOIN_KEY_FIELD) else {
                panic!("join key must be an int");
            };
            counts[k as usize] += 1;
        }
        // Analytically key 0 holds ~24% of the Zipf(1.2) mass over 500 keys;
        // the top key must dominate and low ranks must outweigh high ranks.
        let share0 = counts[0] as f64 / a1.len() as f64;
        assert!(
            (0.15..=0.35).contains(&share0),
            "top-key share {share0} outside expected Zipf(1.2) band"
        );
        let low: usize = counts[..10].iter().sum();
        let high: usize = counts[490..].iter().sum();
        assert!(low > high * 5, "low ranks {low} vs high ranks {high}");
    }

    #[test]
    fn uniform_keys_are_unchanged_by_the_distribution_knob() {
        // The default distribution must reproduce byte-for-byte the streams
        // generated before the knob existed (same RNG call sequence).
        let gen = StreamGenerator::new(config());
        let a = gen.generate(StreamId::A);
        let domain = config().key_domain();
        assert!(a.iter().all(|t| {
            matches!(t.value(JOIN_KEY_FIELD), Some(&Value::Int(k)) if (0..domain).contains(&k))
        }));
    }

    #[test]
    fn validation_guards_zipf_parameters() {
        assert!(zipf_config(1.2).validate().is_ok());
        let mut c = zipf_config(1.2);
        c.sel_join = 0.0; // unbounded domain — no CDF table possible
        assert!(c.validate().is_err());
        assert!(zipf_config(0.0).validate().is_err());
        assert!(zipf_config(f64::NAN).validate().is_err());
    }

    #[test]
    fn generator_exposes_its_config() {
        let gen = StreamGenerator::new(config());
        assert_eq!(gen.config(), &config());
    }
}
