//! Synthetic stream and query workload generation.
//!
//! The paper's evaluation (Section 7) drives CAPE with a synthetic stream
//! generator: Poisson arrivals whose mean inter-arrival time sets the input
//! rate, a join attribute whose domain size controls the join selectivity
//! `S⋈`, and a value attribute filtered by a threshold that controls the
//! selection selectivity `Sσ`.  Query windows follow the distributions of
//! Tables 3 and 4 (Mostly-Small, Uniform, Mostly-Large, Small-Large).
//!
//! This crate reproduces all of that:
//!
//! * [`poisson`] — Poisson arrival-time generation,
//! * [`band`] — band-join streams (`|a.key − b.key| ≤ W`) with materialised
//!   band endpoints and the matching two-sided join condition,
//! * [`generator`] — tuple generation with controllable selectivities,
//! * [`distributions`] — the window distributions of Tables 3 and 4,
//! * [`scenario`] — complete experiment scenarios (rate sweeps, parameters)
//!   used by the figure-reproduction harnesses,
//! * [`churn`] — Poisson schedules of queries entering/leaving the system
//!   (drives the live chain re-slicing of `core::live`),
//! * [`drift`] — piecewise-drifting profiles: scheduled rate / selectivity /
//!   key-skew shifts (drives the adaptive re-optimization of
//!   `core::adaptive`).

pub mod band;
pub mod churn;
pub mod distributions;
pub mod drift;
pub mod generator;
pub mod poisson;
pub mod scenario;

pub use band::{band_condition, BandGenerator, BAND_HI_FIELD, BAND_KEY_FIELD, BAND_LO_FIELD};
pub use churn::{churn_schedule, ChurnAction, ChurnConfig, ChurnEvent};
pub use distributions::WindowDistribution;
pub use drift::{DriftPhase, DriftProfile};
pub use generator::{
    KeyDistribution, StreamGenerator, WorkloadConfig, JOIN_KEY_FIELD, MAX_ZIPF_DOMAIN, VALUE_FIELD,
};
pub use poisson::{arrival_times, PoissonArrivals};
pub use scenario::Scenario;
