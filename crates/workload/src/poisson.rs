//! Poisson arrival processes.
//!
//! "The tuples in the data streams are generated according to the Poisson
//! arrival pattern.  The stream input rate is changed by setting the mean
//! inter-arrival time between two tuples." (Section 7.1)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamkit::Timestamp;

/// An infinite iterator over Poisson arrival timestamps.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
    /// Mean arrivals per second.
    rate: f64,
    /// Current time in seconds.
    now_secs: f64,
}

impl PoissonArrivals {
    /// Build a process with the given rate (tuples/second) and RNG seed.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate,
            now_secs: 0.0,
        }
    }

    /// The configured rate in tuples per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Iterator for PoissonArrivals {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        // Exponential inter-arrival times via inverse transform sampling.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let delta = -u.ln() / self.rate;
        self.now_secs += delta;
        Some(Timestamp::from_micros((self.now_secs * 1e6) as u64))
    }
}

/// All arrival timestamps within `[0, duration_secs)` for the given rate.
pub fn arrival_times(rate: f64, duration_secs: f64, seed: u64) -> Vec<Timestamp> {
    PoissonArrivals::new(rate, seed)
        .take_while(|ts| ts.as_secs_f64() < duration_secs)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone_and_roughly_match_the_rate() {
        let times = arrival_times(50.0, 20.0, 7);
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        // Expected count = rate * duration = 1000; Poisson std-dev ~ 32.
        let n = times.len() as f64;
        assert!((850.0..1150.0).contains(&n), "unexpected arrival count {n}");
        assert!(times.iter().all(|t| t.as_secs_f64() < 20.0));
    }

    #[test]
    fn same_seed_is_deterministic_different_seed_is_not() {
        let a = arrival_times(10.0, 5.0, 42);
        let b = arrival_times(10.0, 5.0, 42);
        let c = arrival_times(10.0, 5.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn higher_rate_means_more_arrivals() {
        let slow = arrival_times(10.0, 10.0, 1).len();
        let fast = arrival_times(80.0, 10.0, 1).len();
        assert!(fast > 4 * slow);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = PoissonArrivals::new(0.0, 1);
    }

    #[test]
    fn rate_accessor() {
        assert_eq!(PoissonArrivals::new(25.0, 0).rate(), 25.0);
    }
}
