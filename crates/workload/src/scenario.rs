//! Complete experiment scenarios.
//!
//! A [`Scenario`] bundles everything one data point of the paper's figures
//! needs: the per-stream arrival rate, the window distribution and query
//! count, the filter / join selectivities and the stream duration.  The
//! figure harnesses sweep the rate from 20 to 80 tuples/second exactly as the
//! evaluation does (Section 7.2).

use streamkit::{Predicate, TimeDelta};

use crate::distributions::WindowDistribution;
use crate::generator::{KeyDistribution, StreamGenerator, WorkloadConfig};

/// One experiment configuration (one curve point of Figures 17–19).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Stream duration in seconds (the paper runs 90 s; harnesses may scale
    /// this down for quick runs).
    pub duration_secs: f64,
    /// Number of registered queries.
    pub num_queries: usize,
    /// Window distribution over the queries.
    pub distribution: WindowDistribution,
    /// Selection selectivity Sσ; `1.0` means the queries carry no selection.
    pub sel_filter: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            rate: 40.0,
            duration_secs: 90.0,
            num_queries: 3,
            distribution: WindowDistribution::Uniform,
            sel_filter: 0.5,
            sel_join: 0.1,
            seed: 7,
        }
    }
}

impl Scenario {
    /// The input rates swept by the paper's experiments.
    pub const PAPER_RATES: [f64; 4] = [20.0, 40.0, 60.0, 80.0];

    /// The query windows of this scenario.
    pub fn windows(&self) -> Vec<TimeDelta> {
        self.distribution.windows(self.num_queries)
    }

    /// The shared selection predicate, or `None` when `sel_filter >= 1`.
    pub fn filter_predicate(&self) -> Option<Predicate> {
        if self.sel_filter >= 1.0 {
            None
        } else {
            Some(self.workload_config().filter_predicate())
        }
    }

    /// The generator configuration corresponding to this scenario.
    pub fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            rate: self.rate,
            duration_secs: self.duration_secs,
            sel_join: self.sel_join,
            sel_filter: self.sel_filter.min(1.0),
            seed: self.seed,
            key_dist: KeyDistribution::Uniform,
        }
    }

    /// A generator for this scenario's streams.
    pub fn generator(&self) -> StreamGenerator {
        StreamGenerator::new(self.workload_config())
    }

    /// A copy of the scenario with a different arrival rate.
    pub fn with_rate(&self, rate: f64) -> Scenario {
        Scenario { rate, ..*self }
    }

    /// A copy of the scenario with a different duration (used to scale the
    /// paper's 90-second runs down for quick benchmark iterations).
    pub fn with_duration(&self, duration_secs: f64) -> Scenario {
        Scenario {
            duration_secs,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_7_2_setup() {
        let s = Scenario::default();
        assert_eq!(s.num_queries, 3);
        assert_eq!(s.duration_secs, 90.0);
        assert_eq!(s.windows().len(), 3);
        assert!(s.filter_predicate().is_some());
    }

    #[test]
    fn filter_disappears_when_selectivity_is_one() {
        let s = Scenario {
            sel_filter: 1.0,
            ..Scenario::default()
        };
        assert!(s.filter_predicate().is_none());
    }

    #[test]
    fn with_rate_and_duration_copy_everything_else() {
        let s = Scenario::default();
        let faster = s.with_rate(80.0);
        assert_eq!(faster.rate, 80.0);
        assert_eq!(faster.num_queries, s.num_queries);
        let shorter = s.with_duration(10.0);
        assert_eq!(shorter.duration_secs, 10.0);
        assert_eq!(shorter.rate, s.rate);
    }

    #[test]
    fn generator_uses_the_scenario_parameters() {
        let s = Scenario {
            rate: 25.0,
            ..Scenario::default()
        };
        assert_eq!(s.generator().config().rate, 25.0);
        assert_eq!(s.workload_config().sel_join, s.sel_join);
    }

    #[test]
    fn paper_rates_cover_20_to_80() {
        assert_eq!(Scenario::PAPER_RATES.len(), 4);
        assert_eq!(Scenario::PAPER_RATES[0], 20.0);
        assert_eq!(Scenario::PAPER_RATES[3], 80.0);
    }
}
