//! Explore the analytical cost model (Equations 1–4): for a handful of
//! parameter settings, print the memory and CPU cost of each sharing
//! strategy and the resulting savings of state-slicing.
//!
//! ```text
//! cargo run --example cost_explorer
//! ```

use state_slice_repro::cost_model::{
    pullup_cost, pushdown_cost, state_slice_cost, SavingsPoint, SystemParams,
};

fn main() {
    println!("# Analytical costs (Equations 1-3), lambda = 50 t/s, W2 = 60 s, Mt = 1 KB");
    println!(
        "{:<8} {:<8} {:<8} {:>12} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "rho",
        "Ssigma",
        "S1",
        "mem pullup",
        "mem pushdn",
        "mem slice",
        "cpu pullup",
        "cpu pushdn",
        "cpu slice"
    );
    let settings = [
        (1.0 / 60.0, 0.01, 0.1), // the intro's motivation example
        (0.2, 0.2, 0.1),
        (0.5, 0.5, 0.1),
        (0.8, 0.8, 0.4),
        (0.33, 0.5, 0.025),
    ];
    for &(rho, sel_filter, sel_join) in &settings {
        let w2 = 60.0;
        let p = SystemParams::symmetric(50.0, rho * w2, w2, sel_filter, sel_join);
        let pu = pullup_cost(&p);
        let pd = pushdown_cost(&p);
        let ss = state_slice_cost(&p);
        println!(
            "{:<8.3} {:<8.2} {:<8.3} {:>12.0} {:>12.0} {:>12.0} {:>14.0} {:>14.0} {:>14.0}",
            rho,
            sel_filter,
            sel_join,
            pu.memory_kb,
            pd.memory_kb,
            ss.memory_kb,
            pu.cpu_per_sec,
            pd.cpu_per_sec,
            ss.cpu_per_sec
        );
    }

    println!("\n# Savings of state-slicing (Equation 4 / Figure 11)");
    println!(
        "{:<8} {:<8} {:<8} {:>16} {:>18} {:>16} {:>18}",
        "rho",
        "Ssigma",
        "S1",
        "mem vs pullup %",
        "mem vs pushdown %",
        "cpu vs pullup %",
        "cpu vs pushdown %"
    );
    for &(rho, sel_filter, sel_join) in &settings {
        let w2 = 60.0;
        let p = SystemParams::symmetric(50.0, rho * w2, w2, sel_filter, sel_join);
        let s = SavingsPoint::evaluate(&p);
        println!(
            "{:<8.3} {:<8.2} {:<8.3} {:>16.1} {:>18.1} {:>16.1} {:>18.1}",
            rho,
            sel_filter,
            sel_join,
            100.0 * s.mem_vs_pullup,
            100.0 * s.mem_vs_pushdown,
            100.0 * s.cpu_vs_pullup,
            100.0 * s.cpu_vs_pushdown
        );
    }
}
