//! Publish/subscribe style workload: dozens of subscriptions with skewed
//! window sizes over the same pair of streams, served by a single shared
//! state-slice chain, and migrated online from the Mem-Opt slicing towards
//! the CPU-Opt slicing.
//!
//! ```text
//! cargo run --release --example publish_subscribe
//! ```

use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    merge_spec_slices, ChainBuilder, JoinQuery, QueryWorkload, SharedChainPlan,
};
use state_slice_repro::streamkit::{Executor, JoinCondition};
use state_slice_repro::workload::{Scenario, WindowDistribution, JOIN_KEY_FIELD};

fn main() {
    // Twelve subscriptions with the Small-Large window distribution of
    // Table 4 (half subscribe to the last few seconds, half to half a minute).
    let scenario = Scenario {
        rate: 40.0,
        duration_secs: 20.0,
        num_queries: 12,
        distribution: WindowDistribution::SmallLarge,
        sel_filter: 1.0,
        sel_join: 0.025,
        seed: 9,
    };
    let workload = QueryWorkload::new(
        scenario
            .windows()
            .into_iter()
            .enumerate()
            .map(|(i, w)| JoinQuery::new(format!("Sub{:02}", i + 1), w))
            .collect(),
        JoinCondition::equi(JOIN_KEY_FIELD),
    )
    .expect("workload");

    let builder = ChainBuilder::new(workload.clone());
    let mem_opt = builder.memory_optimal();
    let cost = ss_cost_config(&scenario);
    let cpu_opt = builder.cpu_optimal(&cost).expect("cpu-opt chain");
    println!(
        "Mem-Opt chain: {} slices; CPU-Opt chain: {} slices (estimated {:.0} comparisons/s)",
        mem_opt.num_slices(),
        cpu_opt.spec.num_slices(),
        cpu_opt.estimated_cpu
    );

    // Online migration: the CPU-Opt boundary set is a subset of the Mem-Opt
    // boundary set, so the running chain can be migrated by repeatedly
    // merging adjacent slices (Section 5.3).
    let mut current = mem_opt.clone();
    let mut merges = 0;
    while current != cpu_opt.spec {
        let extra = current
            .path()
            .iter()
            .find(|b| !cpu_opt.spec.path().contains(b))
            .copied();
        let Some(boundary) = extra else { break };
        let idx = current
            .path()
            .iter()
            .position(|&b| b == boundary)
            .expect("boundary exists");
        current = merge_spec_slices(&workload, &current, idx - 1).expect("merge");
        merges += 1;
    }
    println!("migration: {merges} slice merges take the Mem-Opt chain to the CPU-Opt chain");

    // Execute both chains on the same published streams and compare.
    let (stream_a, stream_b) = scenario.generator().generate_pair();
    println!(
        "\n{:<14} {:>10} {:>14} {:>14} {:>14}",
        "chain", "operators", "avg state", "comparisons", "service t/s"
    );
    for (label, spec) in [("Mem-Opt", &mem_opt), ("CPU-Opt", &cpu_opt.spec)] {
        let shared =
            SharedChainPlan::build(&workload, spec, &PlannerOptions::default()).expect("plan");
        let operators = shared.plan.num_nodes();
        let mut exec = Executor::new(shared.plan);
        exec.ingest_all(
            CHAIN_ENTRY,
            merge_streams(stream_a.clone(), stream_b.clone()),
        )
        .expect("ingest");
        let report = exec.run().expect("run");
        println!(
            "{:<14} {:>10} {:>14.1} {:>14} {:>14.0}",
            label,
            operators,
            report.memory.avg_state_tuples,
            report.totals.total_comparisons(),
            report.service_rate()
        );
    }
}

fn ss_cost_config(scenario: &Scenario) -> state_slice_repro::core::CostConfig {
    state_slice_repro::core::CostConfig {
        lambda_a: scenario.rate,
        lambda_b: scenario.rate,
        sel_join: scenario.sel_join,
        csys: 10.0,
    }
}
