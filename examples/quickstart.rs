//! Quickstart: share the paper's two motivating queries with a state-slice
//! chain.
//!
//! Q1 joins temperature and humidity sensors on their location over a
//! 1-minute window; Q2 does the same over a 60-minute window but only for
//! high temperature readings.  Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{ChainBuilder, JoinQuery, QueryWorkload, SharedChainPlan};
use state_slice_repro::query::{parse_query, translate, SchemaRegistry};
use state_slice_repro::streamkit::tuple::{DataType, Field, StreamId};
use state_slice_repro::streamkit::{Executor, Schema, Timestamp, Tuple, Value};

fn main() {
    // 1. Register the stream schemas.
    let mut schemas = SchemaRegistry::new();
    schemas.register(
        "Temperature",
        Schema::new(vec![
            Field::new("LocationId", DataType::Int),
            Field::new("Value", DataType::Int),
        ]),
    );
    schemas.register(
        "Humidity",
        Schema::new(vec![
            Field::new("LocationId", DataType::Int),
            Field::new("Value", DataType::Int),
        ]),
    );

    // 2. Write the two continuous queries in the paper's SQL-like language.
    let q1 = translate(
        &parse_query(
            "SELECT A.* FROM Temperature A, Humidity B \
             WHERE A.LocationId = B.LocationId WINDOW 1 min",
        )
        .expect("parse Q1"),
        &schemas,
    )
    .expect("translate Q1");
    let q2 = translate(
        &parse_query(
            "SELECT A.* FROM Temperature A, Humidity B \
             WHERE A.LocationId = B.LocationId AND A.Value > 50 WINDOW 60 min",
        )
        .expect("parse Q2"),
        &schemas,
    )
    .expect("translate Q2");

    // 3. Register both queries as one shared workload and build the Mem-Opt
    //    state-slice chain.
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::with_filter("Q1", q1.window, q1.filter_a),
            JoinQuery::with_filter("Q2", q2.window, q2.filter_a),
        ],
        q1.join_condition,
    )
    .expect("workload");
    let chain = ChainBuilder::new(workload.clone()).memory_optimal();
    println!("chain slices:");
    for slice in chain.slices() {
        println!("  {}", slice.window);
    }
    let shared =
        SharedChainPlan::build(&workload, &chain, &PlannerOptions::default()).expect("plan");
    println!("shared plan has {} operators", shared.plan.num_nodes());

    // 4. Feed a small synthetic sensor trace: one reading per second per
    //    stream, 10 locations, temperatures 0..100.
    let temperature: Vec<Tuple> = (0..600u64)
        .map(|s| {
            Tuple::new(
                Timestamp::from_secs(s),
                StreamId::A,
                vec![
                    Value::Int((s % 10) as i64),
                    Value::Int((s * 7 % 100) as i64),
                ],
            )
        })
        .collect();
    let humidity: Vec<Tuple> = (0..600u64)
        .map(|s| {
            Tuple::new(
                Timestamp::from_secs(s),
                StreamId::B,
                vec![Value::Int((s % 10) as i64), Value::Int((s % 100) as i64)],
            )
        })
        .collect();

    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, merge_streams(temperature, humidity))
        .expect("ingest");
    let report = exec.run().expect("run");

    // 5. Report what each query received and what the shared plan cost.
    println!("\nresults:");
    println!(
        "  Q1 (1 min window, no filter):   {:>6} joined tuples",
        report.sink_count("Q1")
    );
    println!(
        "  Q2 (60 min window, Value > 50): {:>6} joined tuples",
        report.sink_count("Q2")
    );
    println!("\nresources:");
    println!(
        "  peak state memory: {} tuples",
        report.memory.peak_state_tuples
    );
    println!("  comparisons:       {}", report.totals.total_comparisons());
    println!("  service rate:      {:.0} tuples/s", report.service_rate());
}
