//! Sensor-network monitoring: many similar continuous queries with different
//! windows and selections, compared across sharing strategies.
//!
//! This mirrors the evaluation setup of Section 7.2: three queries over the
//! same pair of sensor streams, the larger two carrying a selection, run under
//! (a) naive selection pull-up, (b) stream partition with selection
//! push-down, and (c) the state-slice chain — all fed the exact same Poisson
//! input.
//!
//! ```text
//! cargo run --release --example sensor_monitoring
//! ```

use state_slice_repro::baselines::{
    PullUpPlanBuilder, PushDownPlanBuilder, UnsharedPlanBuilder, ENTRY_A, ENTRY_B,
};
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{ChainBuilder, JoinQuery, QueryWorkload, SharedChainPlan};
use state_slice_repro::streamkit::{Executor, JoinCondition};
use state_slice_repro::workload::{Scenario, WindowDistribution, JOIN_KEY_FIELD};

fn main() {
    let scenario = Scenario {
        rate: 40.0,
        duration_secs: 30.0,
        num_queries: 3,
        distribution: WindowDistribution::MostlySmall,
        sel_filter: 0.5,
        sel_join: 0.1,
        seed: 42,
    };
    let filter = scenario.filter_predicate().expect("selective filter");
    let workload = QueryWorkload::new(
        scenario
            .windows()
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                if i == 0 {
                    JoinQuery::new(format!("Q{}", i + 1), w)
                } else {
                    JoinQuery::with_filter(format!("Q{}", i + 1), w, filter.clone())
                }
            })
            .collect(),
        JoinCondition::equi(JOIN_KEY_FIELD),
    )
    .expect("workload");

    let (stream_a, stream_b) = scenario.generator().generate_pair();
    println!(
        "workload: {} queries, windows {:?} s, {} tuples per stream",
        workload.len(),
        scenario
            .windows()
            .iter()
            .map(|w| w.as_secs_f64())
            .collect::<Vec<_>>(),
        stream_a.len()
    );
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>12}",
        "strategy", "avg state", "comparisons", "service t/s", "Q3 results"
    );

    // State-slice chain.
    let chain = ChainBuilder::new(workload.clone()).memory_optimal();
    let shared =
        SharedChainPlan::build(&workload, &chain, &PlannerOptions::default()).expect("plan");
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(
        CHAIN_ENTRY,
        merge_streams(stream_a.clone(), stream_b.clone()),
    )
    .expect("ingest");
    let report = exec.run().expect("run");
    print_row("State-Slice-Chain", &report);

    // Baselines.
    for (label, plan) in [
        (
            "Selection-PullUp",
            PullUpPlanBuilder::new().build(&workload).expect("pull-up"),
        ),
        (
            "Selection-PushDown",
            PushDownPlanBuilder::new()
                .build(&workload)
                .expect("push-down"),
        ),
        (
            "Unshared",
            UnsharedPlanBuilder::new()
                .build(&workload)
                .expect("unshared"),
        ),
    ] {
        let mut exec = Executor::new(plan.plan);
        exec.ingest_all(ENTRY_A, stream_a.clone())
            .expect("ingest A");
        exec.ingest_all(ENTRY_B, stream_b.clone())
            .expect("ingest B");
        let report = exec.run().expect("run");
        print_row(label, &report);
    }
}

fn print_row(label: &str, report: &state_slice_repro::streamkit::ExecutionReport) {
    println!(
        "{:<22} {:>14.1} {:>14} {:>14.0} {:>12}",
        label,
        report.memory.avg_state_tuples,
        report.totals.total_comparisons(),
        report.service_rate(),
        report.sink_count("Q3"),
    );
}
