//! Facade crate for the State-Slice reproduction.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`streamkit`] — the stream-processing substrate (operators, plans,
//!   executor, statistics),
//! * [`core`](state_slice_core) — the paper's contribution: state-sliced
//!   window join chains, Mem-Opt / CPU-Opt chain buildup, selection
//!   push-down, online migration,
//! * [`baselines`](ss_baselines) — the sharing strategies from the literature
//!   that the paper compares against,
//! * [`cost_model`](ss_cost_model) — the analytical memory/CPU cost model,
//! * [`workload`](ss_workload) — synthetic stream and query workloads,
//! * [`query`](ss_query) — the SQL-like continuous query language.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the mapping from
//! the paper's tables and figures to runnable harnesses.

pub use ss_baselines as baselines;
pub use ss_cost_model as cost_model;
pub use ss_query as query;
pub use ss_workload as workload;
pub use state_slice_core as core;
pub use streamkit;

/// Convenience prelude with the most frequently used types.
pub mod prelude {
    pub use ss_baselines::{PullUpPlanBuilder, PushDownPlanBuilder, UnsharedPlanBuilder};
    pub use ss_cost_model::{CostEstimate, SystemParams};
    pub use ss_query::{parse_query, QuerySpec};
    pub use ss_workload::{Scenario, StreamGenerator, WindowDistribution, WorkloadConfig};
    pub use state_slice_core::{
        ChainBuilder, ChainSpec, JoinQuery, QueryWorkload, SharedChainPlan, SlicedBinaryJoinOp,
        SlicedOneWayJoinOp,
    };
    pub use streamkit::{
        Executor, JoinCondition, Plan, Predicate, TimeDelta, Timestamp, Tuple, WindowSpec,
    };
}
