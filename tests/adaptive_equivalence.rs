//! Differential suite for adaptive re-optimization (`core::adaptive`).
//!
//! Property: the drift supervisor is **invisible in the results**.  Whatever
//! re-plans it fires — strategy switches, chain re-cuts, vetoes — a live
//! chain driven by `Supervisor::observe` delivers exactly the per-sink result
//! multisets of a statically planned Mem-Opt chain fed the same input
//! (Theorem 1: all slicings of a workload are result-equivalent, and the
//! migration protocol preserves state across re-cuts).
//!
//! The deterministic case pins the interesting trajectory — a selectivity
//! collapse that provably fires a live merge — and the proptest sweeps random
//! arrival patterns, drift points and observation schedules where firing is
//! incidental: equivalence must hold whether or not the supervisor acts.

use proptest::prelude::*;
use state_slice_repro::core::adaptive::{Supervisor, SupervisorConfig};
use state_slice_repro::core::live::{LiveOptions, LiveReslicer};
use state_slice_repro::core::planner::{PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::verify::collected_fingerprints;
use state_slice_repro::core::{ChainSpec, CostConfig, JoinQuery, QueryWorkload, SharedChainPlan};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{Executor, JoinCondition, TimeDelta, Timestamp, Tuple};

type Fingerprint = (Timestamp, TimeDelta, Timestamp);

fn workload() -> QueryWorkload {
    QueryWorkload::new(
        vec![
            JoinQuery::new("Q4", TimeDelta::from_secs(4)),
            JoinQuery::new("Q9", TimeDelta::from_secs(9)),
            JoinQuery::new("Q16", TimeDelta::from_secs(16)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap()
}

/// An eager supervisor: single-observation confirmation, a short warm-up and
/// a near-free pause model, so random runs re-plan as often as possible.
fn supervisor() -> Supervisor {
    let declared = CostConfig {
        lambda_a: 1.0,
        lambda_b: 1.0,
        sel_join: 0.25,
        csys: 1.0,
    };
    let config = SupervisorConfig {
        rate_ratio: 1.5,
        sel_ratio: 2.0,
        confirm: 1,
        warmup_secs: 4.0,
        horizon_secs: 500.0,
        pause_cost_per_tuple: 0.001,
        ..SupervisorConfig::default()
    };
    Supervisor::new(declared, config)
}

/// Build a timestamp-ordered input stream from (delta-tenths, is-A, key)
/// triples.
fn build_input(arrivals: &[(u64, bool, i64)]) -> Vec<Tuple> {
    let mut tenths = 0u64;
    arrivals
        .iter()
        .map(|&(delta, is_a, key)| {
            tenths += delta;
            let stream = if is_a { StreamId::A } else { StreamId::B };
            Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key])
        })
        .collect()
}

fn retaining_options() -> LiveOptions {
    LiveOptions {
        planner: PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        },
        ..LiveOptions::default()
    }
}

/// Drive the live chain with the supervisor observing at every cut; return
/// each query's sorted result fingerprints and the number of applied
/// re-plans.
fn adaptive_results(input: &[Tuple], cuts: &[usize]) -> (Vec<(String, Vec<Fingerprint>)>, usize) {
    let mut live = LiveReslicer::launch(workload(), retaining_options()).unwrap();
    let mut sup = supervisor();
    let mut done = 0usize;
    for &cut in cuts {
        let cut = cut.min(input.len());
        live.ingest_all(input[done..cut].to_vec()).unwrap();
        done = cut;
        sup.observe(&mut live).unwrap();
    }
    live.ingest_all(input[done..].to_vec()).unwrap();
    let replans = sup.log().replans();
    let outcome = live.finish().unwrap();
    let mut results: Vec<(String, Vec<Fingerprint>)> = outcome
        .queries
        .iter()
        .map(|q| {
            let mut fps = collected_fingerprints(&q.collected);
            fps.sort_unstable();
            (q.name.clone(), fps)
        })
        .collect();
    results.sort();
    (results, replans)
}

/// The oracle: a statically planned Mem-Opt chain fed the whole input.
fn static_results(input: &[Tuple]) -> Vec<(String, Vec<Fingerprint>)> {
    let workload = workload();
    let spec = ChainSpec::memory_optimal(&workload);
    let shared = SharedChainPlan::build(
        &workload,
        &spec,
        &PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        },
    )
    .unwrap();
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input.to_vec()).unwrap();
    exec.run().unwrap();
    let mut results: Vec<(String, Vec<Fingerprint>)> = workload
        .queries()
        .iter()
        .map(|q| {
            let sink = exec.plan().sink(&q.name).expect("sink exists");
            let mut fps = collected_fingerprints(sink.collected());
            fps.sort_unstable();
            (q.name.clone(), fps)
        })
        .collect();
    results.sort();
    results
}

fn assert_equivalent(input: &[Tuple], cuts: &[usize]) -> usize {
    let (live, replans) = adaptive_results(input, cuts);
    let fresh = static_results(input);
    assert_eq!(
        live, fresh,
        "adaptive results diverged from the static oracle ({replans} replans)"
    );
    replans
}

#[test]
fn a_fired_replan_leaves_the_results_untouched() {
    // One tuple per stream per second; the streams stop joining at t=40, so
    // the measured S⋈ collapses and the supervisor merges the chain live.
    let mut arrivals = Vec::new();
    for t in 0..40u64 {
        arrivals.push((if t == 0 { 0 } else { 5 }, true, (t % 4) as i64));
        arrivals.push((5, false, (t % 4) as i64));
    }
    for t in 40..120u64 {
        arrivals.push((5, true, 100 + (t % 4) as i64));
        arrivals.push((5, false, 200 + (t % 4) as i64));
    }
    let input = build_input(&arrivals);
    // Observe every 20 s of arrivals (40 tuples).
    let cuts: Vec<usize> = (1..6).map(|i| i * 40).collect();
    let replans = assert_equivalent(&input, &cuts);
    assert!(replans >= 1, "the collapse must fire a live re-plan");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random arrivals with a mid-run key-domain shift (the drift), random
    /// observation cuts: the supervisor may re-plan, veto or keep quiet, and
    /// the per-sink multisets must match the static oracle either way.
    #[test]
    fn adaptive_execution_is_equivalent_to_static_planning(
        first in prop::collection::vec((0u64..6, proptest::bool::ANY, 0i64..3), 30..120),
        second in prop::collection::vec((0u64..6, proptest::bool::ANY, 0i64..40), 30..120),
        chunks in prop::collection::vec(15usize..60, 1..6),
    ) {
        let arrivals: Vec<(u64, bool, i64)> =
            first.into_iter().chain(second).collect();
        let input = build_input(&arrivals);
        let mut cuts = Vec::new();
        let mut pos = 0usize;
        for chunk in chunks {
            pos = (pos + chunk).min(input.len());
            cuts.push(pos);
        }
        assert_equivalent(&input, &cuts);
    }
}
