//! Differential suite for the band-indexed join state: the value-ordered
//! index is invisible.  For band-join workloads (`|a.key − b.key| ≤ W`, no
//! equi component, so `JoinState::for_condition` selects the `BandIndexed`
//! mode), a chain run with the band index must be indistinguishable from the
//! same chain forced onto linear-scan probes:
//!
//! * **per-sink multisets** — identical result deliveries for every query;
//! * **final states** — identical drained punctuation-aligned checkpoints
//!   (per-slice stored tuples, union watermarks, sink counters, ingest
//!   progress; sink `collected` compared as multisets, since candidate
//!   *iteration order* — value order vs insertion order — is the one thing
//!   the index legitimately changes within a probe batch);
//! * **purge counts** — cross-purging walks the arena front by timestamp and
//!   never consults the index, so `purge_comparisons` match exactly, as do
//!   the output-scaling route/union/filter/split counters.  Probe
//!   comparisons are the point of the index: `indexed ≤ scan`.
//!
//! Sharding: the planner refuses to hash-partition a no-equi condition
//! across several shards (there is no key to route by), so band chains run
//! single-shard — the 4-shard request must error, and the 1-shard sharded
//! executor must match the plain executor.  Live churn sessions (queries
//! entering/leaving, with merge/split/eager-recut migrations) must preserve
//! the equivalence too.

use proptest::prelude::*;
use state_slice_repro::core::live::{LiveOptions, LiveReslicer, MigrationMode};
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::verify::collected_fingerprints;
use state_slice_repro::core::{
    ChainPlanFactory, ChainSpec, JoinQuery, QueryWorkload, SharedChainPlan, SlicedBinaryJoinOp,
};
use state_slice_repro::streamkit::checkpoint::{NodeCheckpoint, ShardCheckpoint};
use state_slice_repro::streamkit::predicate::CmpOp;
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{
    CostCounters, Executor, JoinCondition, TimeDelta, Timestamp, Tuple,
};

/// The band condition over `[key, lo, hi]` tuples, written from both sides
/// so the stored side always classifies as a two-sided band on its `key`.
fn band_condition() -> JoinCondition {
    let theta = |left_field, op, right_field| JoinCondition::Theta {
        left_field,
        op,
        right_field,
    };
    JoinCondition::And(
        Box::new(JoinCondition::And(
            Box::new(theta(0, CmpOp::Ge, 1)),
            Box::new(theta(0, CmpOp::Le, 2)),
        )),
        Box::new(JoinCondition::And(
            Box::new(theta(1, CmpOp::Le, 0)),
            Box::new(theta(2, CmpOp::Ge, 0)),
        )),
    )
}

/// A band tuple `[key, key − w, key + w]` at `tenths` of a second.
fn band_tuple(stream: StreamId, tenths: u64, key: i64, w: i64) -> Tuple {
    Tuple::of_ints(
        Timestamp::from_millis(tenths * 100),
        stream,
        &[key, key - w, key + w],
    )
}

fn workload_of(windows: &[u64]) -> QueryWorkload {
    let queries = windows
        .iter()
        .map(|&w| JoinQuery::new(format!("Q{w}"), TimeDelta::from_secs(w)))
        .collect();
    QueryWorkload::new(queries, band_condition()).unwrap()
}

/// Sort a sink's retained tuples so checkpoints compare as multisets (see
/// module docs: within one probe batch the index changes iteration order).
fn normalize_sinks(mut ckpt: ShardCheckpoint) -> ShardCheckpoint {
    let sort_key = |t: &Tuple| {
        let ints: Vec<i64> = (0..8)
            .map(|i| t.value(i).and_then(|v| v.as_int()).unwrap_or(i64::MIN))
            .collect();
        (t.ts, t.origin_span, t.lineage, ints)
    };
    for node in &mut ckpt.nodes {
        if let NodeCheckpoint::Sink { collected, .. } = node {
            collected.sort_by_key(sort_key);
        }
    }
    ckpt
}

type Outcome = (
    Vec<(String, Vec<(Timestamp, TimeDelta, Timestamp)>)>,
    CostCounters,
    ShardCheckpoint,
);

/// Run the chain on one executor with the natural (band-indexed) join states
/// or with probes forced onto linear scans.
fn run_mode(workload: &QueryWorkload, spec: &ChainSpec, input: &[Tuple], indexed: bool) -> Outcome {
    let options = PlannerOptions {
        retain_results: true,
        index_join_state: indexed,
        ..PlannerOptions::default()
    };
    let shared = SharedChainPlan::build(workload, spec, &options).expect("plan builds");
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    let report = exec.run().expect("run");
    let results = workload
        .queries()
        .iter()
        .map(|q| {
            let sink = exec.plan().sink(&q.name).expect("sink exists");
            (q.name.clone(), collected_fingerprints(sink.collected()))
        })
        .collect();
    let state = normalize_sinks(ShardCheckpoint::capture(&mut exec).expect("drained capture"));
    (results, report.totals, state)
}

fn assert_band_invariant(indexed: &Outcome, scan: &Outcome) {
    // Identical per-sink result multisets.
    assert_eq!(indexed.0, scan.0);
    // Identical final states at the drained boundary.
    assert_eq!(indexed.2, scan.2);
    // The index only ever removes probe work...
    assert!(indexed.1.probe_comparisons <= scan.1.probe_comparisons);
    // ...and every other counter is untouched by it.
    assert_eq!(indexed.1.purge_comparisons, scan.1.purge_comparisons);
    assert_eq!(indexed.1.route_comparisons, scan.1.route_comparisons);
    assert_eq!(indexed.1.union_comparisons, scan.1.union_comparisons);
    assert_eq!(indexed.1.filter_comparisons, scan.1.filter_comparisons);
    assert_eq!(indexed.1.split_comparisons, scan.1.split_comparisons);
    assert_eq!(indexed.1.items_dropped, 0);
    assert_eq!(scan.1.items_dropped, 0);
}

#[test]
fn band_index_matches_linear_scans_on_a_fixed_stream() {
    let workload = workload_of(&[2, 7]);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..300u64 {
        a.push(band_tuple(StreamId::A, i * 2, (i % 23) as i64 - 11, 2));
        b.push(band_tuple(
            StreamId::B,
            i * 2 + 1,
            (i * 5 % 23) as i64 - 11,
            2,
        ));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    let indexed = run_mode(&workload, &spec, &input, true);
    let scan = run_mode(&workload, &spec, &input, false);
    assert_band_invariant(&indexed, &scan);
    assert!(
        indexed.0.iter().any(|(_, r)| !r.is_empty()),
        "workload produces results"
    );
    // On this state size the ordered walk must actually prune the probes.
    assert!(
        scan.1.probe_comparisons > 2 * indexed.1.probe_comparisons,
        "band index did not engage: {} indexed vs {} scan",
        indexed.1.probe_comparisons,
        scan.1.probe_comparisons
    );
}

#[test]
fn band_chains_run_single_shard_and_reject_hash_partitioning() {
    let workload = workload_of(&[2, 7]);
    let spec = ChainSpec::memory_optimal(&workload);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..200u64 {
        a.push(band_tuple(StreamId::A, i * 2, (i % 17) as i64, 3));
        b.push(band_tuple(StreamId::B, i * 2 + 1, (i * 7 % 17) as i64, 3));
    }
    let input = merge_streams(a, b);
    // No equi component → no hash key to route by: multi-shard must refuse.
    let four = ChainPlanFactory::new(
        workload.clone(),
        spec.clone(),
        PlannerOptions::default().with_shards(4),
    );
    assert!(
        four.sharded().is_err(),
        "4-shard band chain must be rejected"
    );
    // The single-shard sharded executor is the supported path and must match
    // the plain executor exactly.
    let factory = ChainPlanFactory::new(
        workload.clone(),
        spec.clone(),
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        }
        .with_shards(1),
    );
    let mut exec = factory.sharded().expect("single-shard band chain builds");
    exec.ingest_all(CHAIN_ENTRY, input.clone()).expect("ingest");
    let report = exec.run().expect("run");
    let single = run_mode(&workload, &spec, &input, true);
    for (name, fps) in &single.0 {
        let sharded_fps = collected_fingerprints(&exec.sink_collected(name));
        assert_eq!(&sharded_fps, fps, "sharded vs plain results for {name}");
    }
    assert_eq!(report.totals.probe_comparisons, single.1.probe_comparisons);
}

/// Final per-slice state fingerprints of a live session's executor:
/// per shard, per slice `(A side, B side)` as `(timestamp, key)` lists.
type LiveStates = Vec<Vec<(Vec<(Timestamp, i64)>, Vec<(Timestamp, i64)>)>>;

fn live_states(live: &LiveReslicer) -> LiveStates {
    let fp = |tuples: Vec<Tuple>| -> Vec<(Timestamp, i64)> {
        tuples
            .into_iter()
            .map(|t| {
                (
                    t.ts,
                    t.value(0).and_then(|v| v.as_int()).unwrap_or(i64::MIN),
                )
            })
            .collect()
    };
    live.executor()
        .shards()
        .iter()
        .map(|shard| {
            shard
                .plan()
                .nodes()
                .iter()
                .filter_map(|n| n.operator.as_any().downcast_ref::<SlicedBinaryJoinOp>())
                .map(|op| {
                    let (a, b) = op.state_tuples();
                    (fp(a), fp(b))
                })
                .collect()
        })
        .collect()
}

/// Per query instance: name, added epoch and sorted result fingerprints.
type ChurnQueries = Vec<(String, u64, Vec<(Timestamp, TimeDelta, Timestamp)>)>;

/// Drive a fixed churn schedule (add Q5 → remove Q2 → add Q3 against an
/// always-alive Q9 anchor) over a band workload, indexed or linear.
fn run_band_churn(input: &[Tuple], indexed: bool) -> (ChurnQueries, CostCounters, LiveStates) {
    let options = LiveOptions {
        planner: PlannerOptions {
            retain_results: true,
            index_join_state: indexed,
            ..PlannerOptions::default()
        },
        mode: MigrationMode::Eager,
        ..LiveOptions::default()
    };
    let mut live = LiveReslicer::launch(workload_of(&[9, 2]), options).expect("launch");
    let cuts = [input.len() / 4, input.len() / 2, 3 * input.len() / 4];
    let actions: [&dyn Fn(&mut LiveReslicer); 3] = [
        &|l| {
            l.add_query(JoinQuery::new("Q5", TimeDelta::from_secs(5)))
                .expect("add Q5")
        },
        &|l| {
            l.remove_query("Q2").expect("remove Q2");
        },
        &|l| {
            l.add_query(JoinQuery::new("Q3", TimeDelta::from_secs(3)))
                .expect("add Q3")
        },
    ];
    let mut done = 0usize;
    for (&cut, action) in cuts.iter().zip(actions.iter()) {
        live.ingest_all(input[done..cut].to_vec()).expect("ingest");
        done = cut;
        action(&mut live);
    }
    live.ingest_all(input[done..].to_vec()).expect("ingest");
    live.drain().expect("drain");
    let states = live_states(&live);
    let outcome = live.finish().expect("finish");
    let queries = outcome
        .queries
        .iter()
        .map(|q| {
            (
                q.name.clone(),
                q.added_epoch,
                collected_fingerprints(&q.collected),
            )
        })
        .collect();
    (queries, outcome.report.totals, states)
}

#[test]
fn live_churn_over_a_band_workload_is_index_invisible() {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..400u64 {
        a.push(band_tuple(StreamId::A, i, (i % 19) as i64 - 9, 2));
        b.push(band_tuple(StreamId::B, i, (i * 3 % 19) as i64 - 9, 2));
    }
    let input = merge_streams(a, b);
    let indexed = run_band_churn(&input, true);
    let scan = run_band_churn(&input, false);
    // Every query instance saw the same result multiset over its lifetime,
    // migrations included.
    assert_eq!(indexed.0, scan.0);
    assert!(
        indexed.0.iter().any(|(_, _, r)| !r.is_empty()),
        "churn session produces results"
    );
    // Merge/split/eager-recut migrations preserve the stored tuples exactly,
    // whichever probe mode the states are in.
    assert_eq!(indexed.2, scan.2);
    assert!(indexed.1.probe_comparisons <= scan.1.probe_comparisons);
    assert_eq!(indexed.1.purge_comparisons, scan.1.purge_comparisons);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for random streams (per-tuple band widths included), random
    /// window sets and both Mem-Opt and fully merged slicings, the band
    /// index is invisible — identical per-sink multisets, identical drained
    /// final states, identical purge counts, never more probe comparisons.
    #[test]
    fn band_index_is_invisible(
        a_arrivals in prop::collection::vec((0u64..300, -6i64..6, 0i64..4), 1..60),
        b_arrivals in prop::collection::vec((0u64..300, -6i64..6, 0i64..4), 1..60),
        windows in prop::collection::btree_set(1u64..15, 1..4),
        merge_all in proptest::bool::ANY,
    ) {
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k, w)| band_tuple(StreamId::A, t, k, w))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k, w)| band_tuple(StreamId::B, t, k, w))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let windows: Vec<u64> = windows.into_iter().collect();
        let workload = workload_of(&windows);
        let input = merge_streams(a, b);
        let spec = if merge_all {
            ChainSpec::fully_merged(&workload)
        } else {
            ChainSpec::memory_optimal(&workload)
        };
        let indexed = run_mode(&workload, &spec, &input, true);
        let scan = run_mode(&workload, &spec, &input, false);
        assert_band_invariant(&indexed, &scan);
    }
}
