//! Property test for batch-at-a-time execution: the vectorized executor path
//! (`ExecutorConfig::vectorized`, whole timestamp-contiguous runs handed to
//! `Operator::process_batch`) is indistinguishable from strict item-at-a-time
//! execution.  For random sliced-chain workloads and batch sizes, the two
//! paths must produce:
//!
//! * identical per-sink result multisets,
//! * identical output-scaling comparison counters (`probe`, `route`,
//!   `filter`, `split`, `union`) and `tuples_processed` — the batch joins
//!   defer cross-purging to one pass per run, but probes window-check every
//!   candidate *before* evaluating the condition, so deferred purges never
//!   change probe work,
//! * identical final join states in every slice (`drain_states`), which is
//!   exactly the purge-monotonicity claim: one purge at the run-maximum
//!   timestamp leaves the same state as purging once per tuple.
//!
//! `purge_comparisons` is the one counter allowed to differ: the batched
//! window joins pay one purge scan per run instead of one per tuple (the test
//! pins `vectorized <= item`).  `items_emitted` may also differ — the batch
//! path coalesces the per-male union punctuations into one per run, which is
//! a coarser but equally valid progress promise.

use proptest::prelude::*;
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{ChainSpec, JoinQuery, QueryWorkload, SharedChainPlan};
use state_slice_repro::streamkit::operator::OpContext;
use state_slice_repro::streamkit::ops::WindowJoinOp;
use state_slice_repro::streamkit::plan::NodeId;
use state_slice_repro::streamkit::queue::StreamItem;
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{
    CostCounters, Executor, ExecutorConfig, JoinCondition, Predicate, TimeDelta, Timestamp, Tuple,
    WindowSpec,
};

fn tuple(stream: StreamId, tenths: u64, key: i64, value: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key, value])
}

/// Per-query sorted result fingerprints, merged cost counters, and the final
/// per-slice join states (A side, B side — `Tuple` equality ignores the key
/// memo, so hash-memoisation differences are invisible here by design).
type Outcome = (
    Vec<(String, Vec<(Timestamp, TimeDelta)>)>,
    CostCounters,
    Vec<(Vec<Tuple>, Vec<Tuple>)>,
);

fn run_mode(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    input: &[Tuple],
    vectorized: bool,
    batch_per_visit: usize,
) -> Outcome {
    let shared = SharedChainPlan::build(
        workload,
        spec,
        &PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        },
    )
    .expect("plan builds");
    let mut exec = Executor::with_config(
        shared.plan,
        ExecutorConfig {
            vectorized,
            batch_per_visit,
            ..ExecutorConfig::default()
        },
    );
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    let report = exec.run().expect("run");
    let results = workload
        .queries()
        .iter()
        .map(|q| {
            let sink = exec.plan().sink(&q.name).expect("sink exists");
            assert_eq!(sink.out_of_order(), 0, "query {} out of order", q.name);
            let mut fp: Vec<(Timestamp, TimeDelta)> = sink
                .collected()
                .iter()
                .map(|t| (t.ts, t.origin_span))
                .collect();
            fp.sort_unstable();
            assert_eq!(fp.len() as u64, report.sink_count(&q.name));
            (q.name.clone(), fp)
        })
        .collect();
    let mut states = Vec::new();
    for idx in 0..exec.plan().num_nodes() {
        let node = exec.plan_mut().node_mut(NodeId(idx)).expect("node exists");
        if let Some(slice) = node
            .operator
            .as_any_mut()
            .downcast_mut::<state_slice_repro::core::SlicedBinaryJoinOp>()
        {
            states.push(slice.drain_states());
        }
    }
    (results, report.totals, states)
}

fn assert_batch_invariant(item: &Outcome, vectorized: &Outcome) {
    // Identical per-sink result multisets.
    assert_eq!(item.0, vectorized.0);
    // Output-scaling comparison counters match exactly.
    assert_eq!(item.1.probe_comparisons, vectorized.1.probe_comparisons);
    assert_eq!(item.1.route_comparisons, vectorized.1.route_comparisons);
    assert_eq!(item.1.filter_comparisons, vectorized.1.filter_comparisons);
    assert_eq!(item.1.split_comparisons, vectorized.1.split_comparisons);
    assert_eq!(item.1.union_comparisons, vectorized.1.union_comparisons);
    assert_eq!(item.1.tuples_processed, vectorized.1.tuples_processed);
    assert_eq!(item.1.items_dropped, 0);
    assert_eq!(vectorized.1.items_dropped, 0);
    // One purge per run can only do less front-checking (monotone purging).
    assert!(vectorized.1.purge_comparisons <= item.1.purge_comparisons);
    // Identical final join state per slice: the batch purge at the
    // run-maximum timestamp leaves exactly the per-tuple-purge state.
    assert_eq!(item.2, vectorized.2);
}

#[test]
fn vectorized_matches_item_at_a_time_on_a_fixed_stream() {
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::with_filter("Q2", TimeDelta::from_secs(7), Predicate::gt(1, 3i64)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..300u64 {
        a.push(tuple(StreamId::A, i * 2, (i % 9) as i64, (i % 8) as i64));
        b.push(tuple(StreamId::B, i * 2 + 1, (i * 5 % 9) as i64, 0));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    let item = run_mode(&workload, &spec, &input, false, 64);
    for batch in [1usize, 7, 64, 256] {
        let vectorized = run_mode(&workload, &spec, &input, true, batch);
        assert_batch_invariant(&item, &vectorized);
    }
    assert!(item.0.iter().any(|(_, r)| !r.is_empty()));
    assert!(item.1.probe_comparisons > 0);
    assert!(!item.2.is_empty(), "chain plans expose their slices");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for random streams, random window sets, optional selections,
    /// both Mem-Opt and fully merged slicings and a random batch size, the
    /// vectorized executor path is indistinguishable from item-at-a-time
    /// execution (per-sink multisets, output-scaling counters, final slice
    /// states).
    #[test]
    fn batch_size_is_invisible(
        a_arrivals in prop::collection::vec((0u64..300, 0i64..8, 0i64..8), 1..60),
        b_arrivals in prop::collection::vec((0u64..300, 0i64..8), 1..60),
        windows in prop::collection::btree_set(1u64..15, 1..4),
        with_filter in proptest::bool::ANY,
        merge_all in proptest::bool::ANY,
        batch in 1usize..100,
    ) {
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k, v)| tuple(StreamId::A, t, k, v))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k)| tuple(StreamId::B, t, k, 0))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let queries: Vec<JoinQuery> = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let window = TimeDelta::from_secs(w);
                if with_filter && i > 0 {
                    JoinQuery::with_filter(format!("Q{i}"), window, Predicate::gt(1, 3i64))
                } else {
                    JoinQuery::new(format!("Q{i}"), window)
                }
            })
            .collect();
        let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
        let input = merge_streams(a, b);
        let spec = if merge_all {
            ChainSpec::fully_merged(&workload)
        } else {
            ChainSpec::memory_optimal(&workload)
        };
        let item = run_mode(&workload, &spec, &input, false, 64);
        let vectorized = run_mode(&workload, &spec, &input, true, batch);
        assert_batch_invariant(&item, &vectorized);
    }

    /// Purge monotonicity in isolation: feeding a window join a run and
    /// purging once at the run-maximum timestamp (the `process_batch` path)
    /// leaves exactly the state per-tuple purging leaves, with identical
    /// results and probe comparisons.
    #[test]
    fn one_purge_at_run_max_equals_per_tuple_purge(
        a_run in prop::collection::vec((0u64..100, 0i64..5), 1..40),
        b_run in prop::collection::vec((50u64..200, 0i64..5), 1..40),
        window in 1u64..12,
    ) {
        let mut a: Vec<Tuple> = a_run
            .iter()
            .map(|&(t, k)| tuple(StreamId::A, t, k, 0))
            .collect();
        let mut b: Vec<Tuple> = b_run
            .iter()
            .map(|&(t, k)| tuple(StreamId::B, t, k, 0))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let make = || {
            WindowJoinOp::symmetric(
                "join",
                WindowSpec::new(TimeDelta::from_secs(window)),
                JoinCondition::equi(0),
            )
        };

        let mut item_op = make();
        let mut item_ctx = OpContext::new();
        for t in &a {
            item_op.process(0, t.clone().into(), &mut item_ctx);
        }
        for t in &b {
            item_op.process(1, t.clone().into(), &mut item_ctx);
        }

        use state_slice_repro::streamkit::operator::Operator;
        let mut batch_op = make();
        let mut batch_ctx = OpContext::new();
        let mut run: Vec<StreamItem> = a.iter().cloned().map(Into::into).collect();
        batch_op.process_batch(0, &mut run, &mut batch_ctx);
        let mut run: Vec<StreamItem> = b.iter().cloned().map(Into::into).collect();
        batch_op.process_batch(1, &mut run, &mut batch_ctx);

        let fp = |ctx: &mut OpContext| {
            let mut out: Vec<(Timestamp, TimeDelta)> = ctx
                .take_outputs()
                .into_iter()
                .filter_map(|(_, i)| i.into_tuple())
                .map(|t| (t.ts, t.origin_span))
                .collect();
            out.sort_unstable();
            out
        };
        prop_assert_eq!(fp(&mut item_ctx), fp(&mut batch_ctx));
        prop_assert_eq!(
            item_ctx.counters.probe_comparisons,
            batch_ctx.counters.probe_comparisons
        );
        prop_assert_eq!(item_op.state_a_len(), batch_op.state_a_len());
        prop_assert_eq!(item_op.state_b_len(), batch_op.state_b_len());
        prop_assert_eq!(item_op.results(), batch_op.results());
    }
}
