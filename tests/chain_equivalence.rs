//! Integration tests for Theorems 1–2: the state-slice chain produces exactly
//! the result set of the regular window join, per registered query, for any
//! slicing of the window — verified against an operator-independent oracle
//! and with property-based testing over random streams and window sets.

use proptest::prelude::*;
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    collected_fingerprints, expected_fingerprints, expected_results, ChainSpec, JoinQuery,
    QueryWorkload, SharedChainPlan,
};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{
    Executor, JoinCondition, Predicate, TimeDelta, Timestamp, Tuple,
};

fn tuple(stream: StreamId, secs_tenths: u64, key: i64, value: i64) -> Tuple {
    Tuple::of_ints(
        Timestamp::from_millis(secs_tenths * 100),
        stream,
        &[key, value],
    )
}

/// Per-query sorted result fingerprints: `(name, [(ts, span, max_input_ts)])`.
type QueryFingerprints = Vec<(String, Vec<(Timestamp, TimeDelta, Timestamp)>)>;

fn run_chain(workload: &QueryWorkload, spec: &ChainSpec, input: &[Tuple]) -> QueryFingerprints {
    let shared = SharedChainPlan::build(
        workload,
        spec,
        &PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        },
    )
    .expect("plan builds");
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    exec.run().expect("run");
    workload
        .queries()
        .iter()
        .map(|q| {
            let sink = exec.plan().sink(&q.name).expect("sink exists");
            (q.name.clone(), collected_fingerprints(sink.collected()))
        })
        .collect()
}

fn oracle(workload: &QueryWorkload, input: &[Tuple]) -> QueryFingerprints {
    let expected = expected_results(workload, input);
    workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), expected_fingerprints(&expected[&q.name])))
        .collect()
}

#[test]
fn mem_opt_chain_matches_oracle_on_a_fixed_scenario() {
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::with_filter("Q2", TimeDelta::from_secs(5), Predicate::gt(1, 40i64)),
            JoinQuery::with_filter("Q3", TimeDelta::from_secs(9), Predicate::gt(1, 40i64)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..120u64 {
        a.push(tuple(
            StreamId::A,
            i * 3,
            (i % 4) as i64,
            (i * 13 % 100) as i64,
        ));
        b.push(tuple(StreamId::B, i * 3 + 1, (i % 4) as i64, 0));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    assert_eq!(
        run_chain(&workload, &spec, &input),
        oracle(&workload, &input)
    );
}

#[test]
fn merged_chains_match_oracle_too() {
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(1)),
            JoinQuery::new("Q2", TimeDelta::from_secs(3)),
            JoinQuery::new("Q3", TimeDelta::from_secs(6)),
            JoinQuery::new("Q4", TimeDelta::from_secs(8)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..150u64 {
        a.push(tuple(StreamId::A, i * 2, (i % 3) as i64, 0));
        b.push(tuple(StreamId::B, i * 2 + 1, (i % 3) as i64, 0));
    }
    let input = merge_streams(a, b);
    let reference = oracle(&workload, &input);
    for path in [
        vec![0usize, 4],
        vec![0, 1, 4],
        vec![0, 2, 4],
        vec![0, 2, 3, 4],
        vec![0, 1, 2, 3, 4],
    ] {
        let spec = ChainSpec::from_path(&workload, &path).unwrap();
        assert_eq!(
            run_chain(&workload, &spec, &input),
            reference,
            "slicing {path:?} diverged from the oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random streams, random distinct windows and a random
    /// selection threshold, every slicing of the chain produces exactly the
    /// oracle's per-query result sets.
    #[test]
    fn chain_equals_oracle_for_random_streams(
        a_arrivals in prop::collection::vec((0u64..400, 0i64..4, 0i64..100), 1..60),
        b_arrivals in prop::collection::vec((0u64..400, 0i64..4, 0i64..100), 1..60),
        windows in prop::collection::btree_set(1u64..20, 1..4),
        threshold in 0i64..100,
        merge_half in proptest::bool::ANY,
    ) {
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k, v)| tuple(StreamId::A, t, k, v))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k, v)| tuple(StreamId::B, t, k, v))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let queries: Vec<JoinQuery> = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                if i % 2 == 0 {
                    JoinQuery::new(format!("Q{i}"), TimeDelta::from_secs(w))
                } else {
                    JoinQuery::with_filter(
                        format!("Q{i}"),
                        TimeDelta::from_secs(w),
                        Predicate::gt(1, threshold),
                    )
                }
            })
            .collect();
        let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
        let input = merge_streams(a, b);
        let reference = oracle(&workload, &input);

        // Mem-Opt slicing.
        let memopt = ChainSpec::memory_optimal(&workload);
        prop_assert_eq!(run_chain(&workload, &memopt, &input), reference.clone());

        // A coarser slicing (merge the first half of the boundaries).
        if merge_half && workload.len() >= 2 {
            let path: Vec<usize> = std::iter::once(0)
                .chain((workload.len() / 2)..=workload.len())
                .collect();
            let spec = ChainSpec::from_path(&workload, &path).unwrap();
            prop_assert_eq!(run_chain(&workload, &spec, &input), reference);
        }
    }
}
