//! Property test for columnar result transport: planning the chain with
//! [`PlannerOptions::columnar_results`] (sliced joins emit per-run
//! [`ColumnBatch`](state_slice_repro::streamkit::columnar::ColumnBatch)
//! result batches, carried through the order-preserving unions to the sinks
//! without materializing row tuples) is indistinguishable from the row-tuple
//! path.  For random workloads, streams, slicings and shard counts the two
//! modes must produce:
//!
//! * identical per-sink result multisets (and zero out-of-order deliveries —
//!   batches are flushed before every interleaved punctuation, so per-port
//!   FIFO order survives the transposition),
//! * identical output-scaling comparison counters (`probe`, `route`,
//!   `filter`, `split`, `union`), `purge_comparisons` and
//!   `tuples_processed` — batching results changes their transport, never
//!   the work that produces or consumes them,
//! * identical final join states in every slice.
//!
//! A second property pins the same equivalence under mid-run
//! [`LiveReslicer`] churn: queries entering and leaving re-slice the chain
//! online (eager or lazy migration, 1 or 4 shards), and every query
//! instance's lifetime deliveries and the final drained states must agree
//! between the columnar and row modes — including across operator rebuilds,
//! which must preserve the columnar flag.

use proptest::prelude::*;
use state_slice_repro::core::live::{LiveOptions, LiveReslicer, MigrationMode};
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::verify::collected_fingerprints;
use state_slice_repro::core::{
    ChainPlanFactory, ChainSpec, ChurnOutcome, JoinQuery, QueryWorkload, SlicedBinaryJoinOp,
};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::window::SliceWindow;
use state_slice_repro::streamkit::{
    CostCounters, JoinCondition, Predicate, ShardedExecutor, TimeDelta, Timestamp, Tuple,
};

fn tuple(stream: StreamId, tenths: u64, key: i64, value: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key, value])
}

/// Per-shard, per-slice `(window, A side, B side)` state fingerprints.
type StateSnapshot = Vec<Vec<(SliceWindow, Vec<(Timestamp, i64)>, Vec<(Timestamp, i64)>)>>;

fn collect_states(exec: &ShardedExecutor) -> StateSnapshot {
    let fp = |tuples: Vec<Tuple>| -> Vec<(Timestamp, i64)> {
        tuples
            .into_iter()
            .map(|t| (t.ts, t.value(0).and_then(|v| v.as_int()).unwrap_or(-1)))
            .collect()
    };
    exec.shards()
        .iter()
        .map(|shard| {
            shard
                .plan()
                .nodes()
                .iter()
                .filter_map(|n| n.operator.as_any().downcast_ref::<SlicedBinaryJoinOp>())
                .map(|op| {
                    let (a, b) = op.state_tuples();
                    (op.window(), fp(a), fp(b))
                })
                .collect()
        })
        .collect()
}

/// Per-query sorted result fingerprints, merged cost counters, and the final
/// per-shard per-slice states.
type Outcome = (
    Vec<(String, Vec<(Timestamp, TimeDelta)>)>,
    CostCounters,
    StateSnapshot,
);

fn run_mode(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    input: &[Tuple],
    shards: usize,
    columnar: bool,
) -> Outcome {
    let mut options = PlannerOptions {
        retain_results: true,
        ..PlannerOptions::default()
    }
    .with_shards(shards);
    if columnar {
        options = options.with_columnar_results();
    }
    let factory = ChainPlanFactory::new(workload.clone(), spec.clone(), options);
    let mut exec = factory.sharded().expect("sharded executor builds");
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    let report = exec.run().expect("run");
    let results = workload
        .queries()
        .iter()
        .map(|q| {
            let mut fp: Vec<(Timestamp, TimeDelta)> = exec
                .sink_collected(&q.name)
                .iter()
                .map(|t| (t.ts, t.origin_span))
                .collect();
            fp.sort_unstable();
            assert_eq!(fp.len() as u64, report.sink_count(&q.name));
            (q.name.clone(), fp)
        })
        .collect();
    let states = collect_states(&exec);
    (results, report.totals, states)
}

fn assert_columnar_invariant(row: &Outcome, columnar: &Outcome) {
    // Identical per-sink result multisets.
    assert_eq!(row.0, columnar.0);
    // Result transport changes neither the work that produces results nor
    // the work that consumes them: every comparison counter matches.
    assert_eq!(row.1.probe_comparisons, columnar.1.probe_comparisons);
    assert_eq!(row.1.purge_comparisons, columnar.1.purge_comparisons);
    assert_eq!(row.1.route_comparisons, columnar.1.route_comparisons);
    assert_eq!(row.1.filter_comparisons, columnar.1.filter_comparisons);
    assert_eq!(row.1.split_comparisons, columnar.1.split_comparisons);
    assert_eq!(row.1.union_comparisons, columnar.1.union_comparisons);
    assert_eq!(row.1.tuples_processed, columnar.1.tuples_processed);
    assert_eq!(row.1.items_dropped, 0);
    assert_eq!(columnar.1.items_dropped, 0);
    // Identical final join state per shard per slice.
    assert_eq!(row.2, columnar.2);
}

#[test]
fn columnar_matches_row_path_on_a_fixed_stream() {
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::with_filter("Q2", TimeDelta::from_secs(7), Predicate::gt(1, 3i64)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..300u64 {
        a.push(tuple(StreamId::A, i * 2, (i % 9) as i64, (i % 8) as i64));
        b.push(tuple(StreamId::B, i * 2 + 1, (i * 5 % 9) as i64, 0));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    for shards in [1usize, 4] {
        let row = run_mode(&workload, &spec, &input, shards, false);
        let columnar = run_mode(&workload, &spec, &input, shards, true);
        assert_columnar_invariant(&row, &columnar);
        assert!(row.0.iter().any(|(_, r)| !r.is_empty()));
        assert!(row.1.probe_comparisons > 0);
        assert!(!row.2.is_empty(), "chain plans expose their slices");
    }
}

/// Windows churned queries draw from (all below the anchor's 15 s).
const POOL: [u64; 4] = [2, 5, 7, 11];

fn pool_query(window_secs: u64) -> JoinQuery {
    JoinQuery::new(format!("C{window_secs}"), TimeDelta::from_secs(window_secs))
}

fn churn_workload(pool_windows: &[u64]) -> QueryWorkload {
    let mut queries = vec![JoinQuery::new("QA", TimeDelta::from_secs(15))];
    queries.extend(pool_windows.iter().map(|&w| pool_query(w)));
    QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
}

#[derive(Debug, Clone)]
enum Action {
    Add(u64),
    Remove(u64),
}

/// Turn an abstract schedule (chunk lengths plus add/remove picks) into a
/// concrete, always-valid event list over the query pool.
fn resolve_schedule(
    schedule: &[(usize, bool, usize)],
    input_len: usize,
    initial: &[u64],
) -> (Vec<usize>, Vec<Action>) {
    let mut active: Vec<u64> = initial.to_vec();
    let mut pos = 0usize;
    let mut cuts = Vec::new();
    let mut actions = Vec::new();
    for &(chunk, add, pick) in schedule {
        pos = (pos + chunk).min(input_len);
        let avail: Vec<u64> = POOL
            .iter()
            .copied()
            .filter(|w| !active.contains(w))
            .collect();
        let add = (add && !avail.is_empty()) || active.is_empty();
        if add {
            if avail.is_empty() {
                continue;
            }
            let w = avail[pick % avail.len()];
            active.push(w);
            actions.push(Action::Add(w));
        } else {
            let w = active.remove(pick % active.len());
            actions.push(Action::Remove(w));
        }
        cuts.push(pos);
    }
    (cuts, actions)
}

/// Drive a live reslicer over the schedule in one transport mode; return the
/// churn outcome and the final drained state snapshot.
fn run_live(
    input: &[Tuple],
    initial: &[u64],
    cuts: &[usize],
    actions: &[Action],
    shards: usize,
    mode: MigrationMode,
    columnar: bool,
) -> (ChurnOutcome, StateSnapshot) {
    let mut planner = PlannerOptions {
        retain_results: true,
        shards,
        ..PlannerOptions::default()
    };
    if columnar {
        planner = planner.with_columnar_results();
    }
    let options = LiveOptions {
        planner,
        mode,
        ..LiveOptions::default()
    };
    let mut live = LiveReslicer::launch(churn_workload(initial), options).unwrap();
    let mut done = 0usize;
    for (&cut, action) in cuts.iter().zip(actions) {
        live.ingest_all(input[done..cut].to_vec()).unwrap();
        done = cut;
        match action {
            Action::Add(w) => live.add_query(pool_query(*w)).unwrap(),
            Action::Remove(w) => live.remove_query(&format!("C{w}")).map(|_| ()).unwrap(),
        }
    }
    live.ingest_all(input[done..].to_vec()).unwrap();
    live.drain().unwrap();
    let states = collect_states(live.executor());
    (live.finish().unwrap(), states)
}

/// Per query instance (name, added epoch), the sorted lifetime delivery
/// fingerprints.
type InstanceFingerprints = Vec<((String, u64), Vec<(Timestamp, TimeDelta, Timestamp)>)>;

fn instance_multisets(outcome: &ChurnOutcome) -> InstanceFingerprints {
    let mut out: Vec<_> = outcome
        .queries
        .iter()
        .map(|q| {
            let mut fps = collected_fingerprints(&q.collected);
            fps.sort_unstable();
            ((q.name.clone(), q.added_epoch), fps)
        })
        .collect();
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    out
}

fn check_churn_schedule(
    arrivals: &[(u64, bool, i64)],
    initial: &[u64],
    schedule: &[(usize, bool, usize)],
    shards: usize,
    mode: MigrationMode,
) {
    let mut tenths = 0u64;
    let input: Vec<Tuple> = arrivals
        .iter()
        .map(|&(delta, is_a, key)| {
            tenths += delta;
            let stream = if is_a { StreamId::A } else { StreamId::B };
            Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key])
        })
        .collect();
    let (cuts, actions) = resolve_schedule(schedule, input.len(), initial);
    let (row_outcome, row_states) = run_live(&input, initial, &cuts, &actions, shards, mode, false);
    let (col_outcome, col_states) = run_live(&input, initial, &cuts, &actions, shards, mode, true);
    assert_eq!(row_outcome.migrations.len(), actions.len());
    assert_eq!(col_outcome.migrations.len(), actions.len());
    assert_eq!(
        instance_multisets(&row_outcome),
        instance_multisets(&col_outcome),
        "per-instance lifetime deliveries diverged between transports"
    );
    assert_eq!(row_states, col_states, "final drained states diverged");
}

#[test]
fn churned_chain_is_transport_invariant() {
    // A mid-run add_query + remove_query on 4 eager shards, columnar vs row.
    let arrivals: Vec<(u64, bool, i64)> = (0..400)
        .map(|i| (i % 4, i % 3 == 0, (i % 5) as i64))
        .collect();
    let initial = [5u64];
    let schedule = [(140usize, true, 1usize), (130, false, 0)];
    check_churn_schedule(&arrivals, &initial, &schedule, 4, MigrationMode::Eager);
}

#[test]
fn lazy_churned_chain_is_transport_invariant() {
    let arrivals: Vec<(u64, bool, i64)> = (0..300)
        .map(|i| ((i * 7) % 5, i % 2 == 0, (i % 4) as i64))
        .collect();
    let initial = [2u64, 11];
    let schedule = [(80usize, true, 0usize), (90, false, 1), (60, true, 2)];
    check_churn_schedule(&arrivals, &initial, &schedule, 1, MigrationMode::Lazy);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for random streams, random window sets, optional
    /// selections, both Mem-Opt and fully merged slicings and 1 or 4
    /// shards, columnar result transport is indistinguishable from the row
    /// path (per-sink multisets, all comparison counters, final states).
    #[test]
    fn columnar_transport_is_invisible(
        a_arrivals in prop::collection::vec((0u64..300, 0i64..8, 0i64..8), 1..60),
        b_arrivals in prop::collection::vec((0u64..300, 0i64..8), 1..60),
        windows in prop::collection::btree_set(1u64..15, 1..4),
        with_filter in proptest::bool::ANY,
        merge_all in proptest::bool::ANY,
        four_shards in proptest::bool::ANY,
    ) {
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k, v)| tuple(StreamId::A, t, k, v))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k)| tuple(StreamId::B, t, k, 0))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let queries: Vec<JoinQuery> = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let window = TimeDelta::from_secs(w);
                if with_filter && i > 0 {
                    JoinQuery::with_filter(format!("Q{i}"), window, Predicate::gt(1, 3i64))
                } else {
                    JoinQuery::new(format!("Q{i}"), window)
                }
            })
            .collect();
        let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
        let input = merge_streams(a, b);
        let spec = if merge_all {
            ChainSpec::fully_merged(&workload)
        } else {
            ChainSpec::memory_optimal(&workload)
        };
        let shards = if four_shards { 4 } else { 1 };
        let row = run_mode(&workload, &spec, &input, shards, false);
        let columnar = run_mode(&workload, &spec, &input, shards, true);
        assert_columnar_invariant(&row, &columnar);
    }

    /// Property: random input and random churn schedule — the live-migrated
    /// chain delivers the same per-instance lifetime results and final
    /// states whether results travel as column batches or row tuples, in
    /// both migration modes and shard counts (operator rebuilds during
    /// re-slicing must preserve the columnar flag).
    #[test]
    fn churn_preserves_columnar_equivalence(
        arrivals in prop::collection::vec((0u64..6, proptest::bool::ANY, 0i64..4), 60..200),
        initial_picks in prop::collection::btree_set(0usize..POOL.len(), 0..3),
        schedule in prop::collection::vec((20usize..90, proptest::bool::ANY, 0usize..8), 1..4),
        four_shards in proptest::bool::ANY,
        lazy in proptest::bool::ANY,
    ) {
        let initial: Vec<u64> = initial_picks.iter().map(|&i| POOL[i]).collect();
        let shards = if four_shards { 4 } else { 1 };
        let mode = if lazy { MigrationMode::Lazy } else { MigrationMode::Eager };
        check_churn_schedule(&arrivals, &initial, &schedule, shards, mode);
    }
}
