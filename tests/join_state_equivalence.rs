//! Property test for the hash-indexed join state: on random equi-join
//! workloads the indexed state-sliced chain must emit exactly the same
//! result multiset — and end with exactly the same per-slice window state —
//! as the pre-index linear-scan reference (the same chain built with
//! `PlannerOptions { index_join_state: false }`).
//!
//! This pins the `JoinState` subsystem to the semantics the paper's
//! Theorems 1–2 assume: the hash index is a pure access-path change.

use proptest::prelude::*;
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::sliced_binary::SlicedBinaryJoinOp;
use state_slice_repro::core::{ChainSpec, JoinQuery, QueryWorkload, SharedChainPlan};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{Executor, JoinCondition, TimeDelta, Timestamp, Tuple};

fn tuple(stream: StreamId, tenths: u64, key: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key, 0])
}

/// Per-query sorted result fingerprints plus per-slice final states
/// (timestamps of both window sides, oldest first).
type ChainOutcome = (
    Vec<(String, Vec<(Timestamp, TimeDelta)>)>,
    Vec<(Vec<Timestamp>, Vec<Timestamp>)>,
);

fn run_chain(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    input: &[Tuple],
    indexed: bool,
) -> ChainOutcome {
    let shared = SharedChainPlan::build(
        workload,
        spec,
        &PlannerOptions {
            retain_results: true,
            index_join_state: indexed,
            ..PlannerOptions::default()
        },
    )
    .expect("plan builds");
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    exec.run().expect("run");
    let results = workload
        .queries()
        .iter()
        .map(|q| {
            let sink = exec.plan().sink(&q.name).expect("sink exists");
            let mut fp: Vec<(Timestamp, TimeDelta)> = sink
                .collected()
                .iter()
                .map(|t| (t.ts, t.origin_span))
                .collect();
            fp.sort_unstable();
            (q.name.clone(), fp)
        })
        .collect();
    let states = exec
        .plan()
        .nodes()
        .iter()
        .filter_map(|n| n.operator.as_any().downcast_ref::<SlicedBinaryJoinOp>())
        .map(|op| op.state_timestamps())
        .collect();
    (results, states)
}

#[test]
fn indexed_chain_matches_linear_reference_on_a_fixed_stream() {
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::new("Q2", TimeDelta::from_secs(7)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..200u64 {
        a.push(tuple(StreamId::A, i * 3, (i % 5) as i64));
        b.push(tuple(StreamId::B, i * 3 + 1, (i * 7 % 5) as i64));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    let indexed = run_chain(&workload, &spec, &input, true);
    let linear = run_chain(&workload, &spec, &input, false);
    assert_eq!(indexed, linear);
    assert!(!indexed.1.is_empty(), "chain has sliced joins");
    assert!(
        indexed.0.iter().any(|(_, r)| !r.is_empty()),
        "workload produces results"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Property: for random streams, random window sets and random key
    /// cardinalities, the hash-indexed chain and the pre-index linear-scan
    /// chain agree on every query's result multiset and on the final state
    /// of every slice.
    #[test]
    fn indexed_chain_equals_linear_reference(
        a_arrivals in prop::collection::vec((0u64..300, 0i64..6), 1..70),
        b_arrivals in prop::collection::vec((0u64..300, 0i64..6), 1..70),
        windows in prop::collection::btree_set(1u64..15, 1..4),
        merge_all in proptest::bool::ANY,
    ) {
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k)| tuple(StreamId::A, t, k))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k)| tuple(StreamId::B, t, k))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let queries: Vec<JoinQuery> = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| JoinQuery::new(format!("Q{i}"), TimeDelta::from_secs(w)))
            .collect();
        let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
        let input = merge_streams(a, b);

        let spec = if merge_all {
            ChainSpec::fully_merged(&workload)
        } else {
            ChainSpec::memory_optimal(&workload)
        };
        let indexed = run_chain(&workload, &spec, &input, true);
        let linear = run_chain(&workload, &spec, &input, false);
        prop_assert_eq!(indexed, linear);
    }
}
