//! Differential migration suite for live query churn (`core::live`).
//!
//! Property: for random input streams and random add/remove schedules, a
//! chain kept alive across the whole run and re-sliced online at every churn
//! event is indistinguishable from chains **freshly planned** for each
//! epoch's workload:
//!
//! * **per-sink multisets** — the results every query instance receives over
//!   its lifetime equal, epoch by epoch, the delivery deltas of a fresh chain
//!   planned for that epoch's workload and fed the whole input history, and
//! * **final states** — after the last drain, the live chain's per-shard
//!   per-slice window states equal (eager mode) the states of a fresh chain
//!   planned for the final workload and fed the entire input; in lazy
//!   split-purge mode the per-slice placement may lag, but the per-side state
//!   *multisets* still agree.
//!
//! Schedules keep one anchor query (the largest window) alive throughout, so
//! churn never changes the chain's coverage and every migration is a pure
//! merge/split re-slicing — the regime where the equivalence is exact.  The
//! window-extending case (no anchor) has its own ramp-up test at the bottom.

use std::collections::BTreeSet;

use proptest::prelude::*;
use state_slice_repro::core::live::{LiveOptions, LiveReslicer, MigrationMode, SliceStrategy};
use state_slice_repro::core::planner::{PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::verify::collected_fingerprints;
use state_slice_repro::core::{
    ChainPlanFactory, ChainSpec, ChurnOutcome, CostConfig, JoinQuery, QueryWorkload,
    SharedChainPlan, SlicedBinaryJoinOp,
};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::window::SliceWindow;
use state_slice_repro::streamkit::{
    Executor, JoinCondition, ShardedExecutor, TimeDelta, Timestamp, Tuple,
};

/// Anchor window (seconds): always registered, so coverage never changes.
const ANCHOR_SECS: u64 = 15;
/// Windows churned queries draw from (all below the anchor).
const POOL: [u64; 6] = [2, 3, 5, 7, 9, 11];

type Fingerprint = (Timestamp, TimeDelta, Timestamp);

fn anchor() -> JoinQuery {
    JoinQuery::new("QA", TimeDelta::from_secs(ANCHOR_SECS))
}

fn pool_query(window_secs: u64) -> JoinQuery {
    JoinQuery::new(format!("C{window_secs}"), TimeDelta::from_secs(window_secs))
}

fn workload_of(pool_windows: &[u64]) -> QueryWorkload {
    let mut queries = vec![anchor()];
    queries.extend(pool_windows.iter().map(|&w| pool_query(w)));
    QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
}

/// Build a timestamp-ordered input stream from (delta-tenths, is-A, key)
/// triples.
fn build_input(arrivals: &[(u64, bool, i64)]) -> Vec<Tuple> {
    let mut tenths = 0u64;
    arrivals
        .iter()
        .map(|&(delta, is_a, key)| {
            tenths += delta;
            let stream = if is_a { StreamId::A } else { StreamId::B };
            Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key])
        })
        .collect()
}

/// One resolved churn event: apply at input index `cut`.
#[derive(Debug, Clone)]
enum Action {
    Add(u64),
    Remove(u64),
}

/// Turn an abstract schedule (chunk lengths plus add/remove picks) into a
/// concrete, always-valid event list.
fn resolve_schedule(
    schedule: &[(usize, bool, usize)],
    input_len: usize,
    initial: &[u64],
) -> (Vec<usize>, Vec<Action>) {
    let mut active: Vec<u64> = initial.to_vec();
    let mut pos = 0usize;
    let mut cuts = Vec::new();
    let mut actions = Vec::new();
    for &(chunk, add, pick) in schedule {
        pos = (pos + chunk).min(input_len);
        let avail: Vec<u64> = POOL
            .iter()
            .copied()
            .filter(|w| !active.contains(w))
            .collect();
        // Degenerate picks resolve to the possible action instead of a no-op
        // event, so every scheduled event really migrates.
        let add = (add && !avail.is_empty()) || active.is_empty();
        if add {
            if avail.is_empty() {
                continue;
            }
            let w = avail[pick % avail.len()];
            active.push(w);
            actions.push(Action::Add(w));
        } else {
            let w = active.remove(pick % active.len());
            actions.push(Action::Remove(w));
        }
        cuts.push(pos);
    }
    (cuts, actions)
}

fn live_options(shards: usize, mode: MigrationMode) -> LiveOptions {
    LiveOptions {
        planner: PlannerOptions {
            retain_results: true,
            shards,
            ..PlannerOptions::default()
        },
        mode,
        ..LiveOptions::default()
    }
}

/// Per-shard, per-slice state snapshot: (window, A-side, B-side) with
/// `(timestamp, key)` fingerprints in state order.
type StateSnapshot = Vec<Vec<(SliceWindow, Vec<(Timestamp, i64)>, Vec<(Timestamp, i64)>)>>;

fn collect_states(exec: &ShardedExecutor) -> StateSnapshot {
    let fp = |tuples: Vec<Tuple>| -> Vec<(Timestamp, i64)> {
        tuples
            .into_iter()
            .map(|t| (t.ts, t.value(0).and_then(|v| v.as_int()).unwrap_or(-1)))
            .collect()
    };
    exec.shards()
        .iter()
        .map(|shard| {
            shard
                .plan()
                .nodes()
                .iter()
                .filter_map(|n| n.operator.as_any().downcast_ref::<SlicedBinaryJoinOp>())
                .map(|op| {
                    let (a, b) = op.state_tuples();
                    (op.window(), fp(a), fp(b))
                })
                .collect()
        })
        .collect()
}

/// Drive the live reslicer over the schedule; return its outcome and the
/// final drained state snapshot.
fn run_live(
    input: &[Tuple],
    initial: &[u64],
    cuts: &[usize],
    actions: &[Action],
    shards: usize,
    mode: MigrationMode,
) -> (ChurnOutcome, StateSnapshot) {
    let mut live = LiveReslicer::launch(workload_of(initial), live_options(shards, mode)).unwrap();
    let mut done = 0usize;
    for (&cut, action) in cuts.iter().zip(actions) {
        live.ingest_all(input[done..cut].to_vec()).unwrap();
        done = cut;
        match action {
            Action::Add(w) => live.add_query(pool_query(*w)).unwrap(),
            Action::Remove(w) => live.remove_query(&format!("C{w}")).map(|_| ()).unwrap(),
        }
    }
    live.ingest_all(input[done..].to_vec()).unwrap();
    live.drain().unwrap();
    let states = collect_states(live.executor());
    (live.finish().unwrap(), states)
}

/// Fresh chain for one epoch's workload, fed the whole input history, run to
/// two quiescent points: returns each sink's delivery delta over
/// `input[start..end]`.
fn reference_epoch_deliveries(
    workload: &QueryWorkload,
    input: &[Tuple],
    start: usize,
    end: usize,
) -> Vec<(String, Vec<Fingerprint>)> {
    let spec = ChainSpec::memory_optimal(workload);
    let shared = SharedChainPlan::build(
        workload,
        &spec,
        &PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        },
    )
    .unwrap();
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input[..start].to_vec())
        .unwrap();
    exec.run().unwrap();
    let marks: Vec<(String, usize)> = workload
        .queries()
        .iter()
        .map(|q| {
            let sink = exec.plan().sink(&q.name).expect("sink exists");
            (q.name.clone(), sink.collected().len())
        })
        .collect();
    exec.ingest_all(CHAIN_ENTRY, input[start..end].to_vec())
        .unwrap();
    exec.run().unwrap();
    marks
        .into_iter()
        .map(|(name, mark)| {
            let sink = exec.plan().sink(&name).expect("sink exists");
            (name, collected_fingerprints(&sink.collected()[mark..]))
        })
        .collect()
}

/// Oracle: per query instance (name, added-epoch), the concatenated epoch
/// deliveries of freshly planned chains over the instance's lifetime.
fn oracle_instances(
    input: &[Tuple],
    initial: &[u64],
    cuts: &[usize],
    actions: &[Action],
) -> Vec<((String, u64), Vec<Fingerprint>)> {
    let mut active: Vec<u64> = initial.to_vec();
    // (name, added_epoch) → accumulated fingerprints.
    let mut ledger: Vec<((String, u64), Vec<Fingerprint>)> = workload_of(initial)
        .queries()
        .iter()
        .map(|q| ((q.name.clone(), 0u64), Vec::new()))
        .collect();
    let mut open: Vec<(String, u64)> = ledger.iter().map(|(key, _)| key.clone()).collect();
    let bounds: Vec<usize> = {
        let mut b = vec![0];
        b.extend_from_slice(cuts);
        b.push(input.len());
        b
    };
    for epoch in 0..bounds.len() - 1 {
        let (start, end) = (bounds[epoch], bounds[epoch + 1]);
        let workload = workload_of(&active);
        for (name, fps) in reference_epoch_deliveries(&workload, input, start, end) {
            let key = open
                .iter()
                .find(|(n, _)| *n == name)
                .expect("active query has an open instance")
                .clone();
            ledger
                .iter_mut()
                .find(|(k, _)| *k == key)
                .expect("instance ledger exists")
                .1
                .extend(fps);
        }
        if epoch < actions.len() {
            match &actions[epoch] {
                Action::Add(w) => {
                    active.push(*w);
                    let key = (format!("C{w}"), epoch as u64 + 1);
                    open.push(key.clone());
                    ledger.push((key, Vec::new()));
                }
                Action::Remove(w) => {
                    active.retain(|x| x != w);
                    open.retain(|(n, _)| *n != format!("C{w}"));
                }
            }
        }
    }
    for (_, fps) in &mut ledger {
        fps.sort_unstable();
    }
    ledger
}

fn assert_live_matches_oracle(
    outcome: &ChurnOutcome,
    oracle: &[((String, u64), Vec<Fingerprint>)],
) {
    assert_eq!(outcome.queries.len(), oracle.len(), "instance count");
    for instance in &outcome.queries {
        let key = (instance.name.clone(), instance.added_epoch);
        let expected = &oracle
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("no oracle instance for {key:?}"))
            .1;
        let mut live = collected_fingerprints(&instance.collected);
        live.sort_unstable();
        assert_eq!(
            &live, expected,
            "per-sink multiset diverged for {key:?} (lifetime epochs {}..{:?})",
            instance.added_epoch, instance.removed_epoch
        );
        assert_eq!(instance.count as usize, live.len(), "count vs collected");
    }
}

/// Fresh sharded chain for the final workload over the full input; states at
/// quiescence.
fn reference_final_states(input: &[Tuple], final_pool: &[u64], shards: usize) -> StateSnapshot {
    let workload = workload_of(final_pool);
    let spec = ChainSpec::memory_optimal(&workload);
    let factory = ChainPlanFactory::new(
        workload,
        spec,
        PlannerOptions {
            retain_results: true,
            shards,
            ..PlannerOptions::default()
        },
    );
    let mut exec = factory.sharded().unwrap();
    exec.ingest_all(CHAIN_ENTRY, input.to_vec()).unwrap();
    exec.run().unwrap();
    collect_states(&exec)
}

/// Per-shard `(A side, B side)` state multisets.
type SideMultisets = Vec<(Vec<(Timestamp, i64)>, Vec<(Timestamp, i64)>)>;

/// Flatten a snapshot to per-shard per-side multisets (for lazy mode, where
/// only the union over slices is pinned).
fn state_multisets(snapshot: &StateSnapshot) -> SideMultisets {
    snapshot
        .iter()
        .map(|slices| {
            let mut a: Vec<(Timestamp, i64)> =
                slices.iter().flat_map(|(_, a, _)| a.clone()).collect();
            let mut b: Vec<(Timestamp, i64)> =
                slices.iter().flat_map(|(_, _, b)| b.clone()).collect();
            a.sort_unstable();
            b.sort_unstable();
            (a, b)
        })
        .collect()
}

fn final_pool(initial: &[u64], actions: &[Action]) -> Vec<u64> {
    let mut active = initial.to_vec();
    for action in actions {
        match action {
            Action::Add(w) => active.push(*w),
            Action::Remove(w) => active.retain(|x| x != w),
        }
    }
    active
}

fn check_schedule(
    arrivals: &[(u64, bool, i64)],
    initial: &[u64],
    schedule: &[(usize, bool, usize)],
    shards: usize,
    mode: MigrationMode,
) {
    let input = build_input(arrivals);
    let (cuts, actions) = resolve_schedule(schedule, input.len(), initial);
    let (outcome, live_states) = run_live(&input, initial, &cuts, &actions, shards, mode);
    assert_eq!(outcome.migrations.len(), actions.len());
    let oracle = oracle_instances(&input, initial, &cuts, &actions);
    assert_live_matches_oracle(&outcome, &oracle);
    let fresh_states = reference_final_states(&input, &final_pool(initial, &actions), shards);
    match mode {
        MigrationMode::Eager => {
            // Exact per-shard per-slice equality with the freshly planned
            // chain, including window boundaries and state order.
            assert_eq!(live_states, fresh_states, "final drain_states diverged");
        }
        MigrationMode::Lazy => {
            // Placement may lag behind (split-purge fills lazily), but each
            // shard holds exactly the same state multiset per side.
            assert_eq!(
                state_multisets(&live_states),
                state_multisets(&fresh_states),
                "final state multisets diverged"
            );
        }
    }
}

#[test]
fn sharded_add_and_remove_preserve_per_sink_multisets() {
    // The acceptance scenario: a mid-run add_query + remove_query on a
    // 4-shard executor, pinned against freshly planned per-epoch chains.
    let arrivals: Vec<(u64, bool, i64)> = (0..400)
        .map(|i| (i % 4, i % 3 == 0, (i % 5) as i64))
        .collect();
    let initial = [5u64];
    let schedule = [(140usize, true, 1usize), (130, false, 0)];
    check_schedule(&arrivals, &initial, &schedule, 4, MigrationMode::Eager);
}

#[test]
fn lazy_split_purge_matches_the_oracle_too() {
    let arrivals: Vec<(u64, bool, i64)> = (0..300)
        .map(|i| ((i * 7) % 5, i % 2 == 0, (i % 4) as i64))
        .collect();
    let initial = [3u64, 9];
    let schedule = [(80usize, true, 0usize), (90, false, 1), (60, true, 2)];
    check_schedule(&arrivals, &initial, &schedule, 1, MigrationMode::Lazy);
}

#[test]
fn cpu_opt_replanning_matches_per_epoch_references() {
    // Re-plan with the CPU-Opt builder at every event; the oracle compares
    // result multisets only (slicing differs from Mem-Opt, states too).
    let arrivals: Vec<(u64, bool, i64)> = (0..350)
        .map(|i| (i % 3, i % 3 != 1, (i % 3) as i64))
        .collect();
    let input = build_input(&arrivals);
    let initial = [2u64, 7, 11];
    let schedule = [(120usize, false, 0usize), (110, true, 3)];
    let (cuts, actions) = resolve_schedule(&schedule, input.len(), &initial);
    let mut options = live_options(1, MigrationMode::Eager);
    options.strategy = SliceStrategy::CpuOpt(CostConfig::default());
    let mut live = LiveReslicer::launch(workload_of(&initial), options).unwrap();
    let mut done = 0usize;
    for (&cut, action) in cuts.iter().zip(&actions) {
        live.ingest_all(input[done..cut].to_vec()).unwrap();
        done = cut;
        match action {
            Action::Add(w) => live.add_query(pool_query(*w)).unwrap(),
            Action::Remove(w) => live.remove_query(&format!("C{w}")).map(|_| ()).unwrap(),
        }
    }
    live.ingest_all(input[done..].to_vec()).unwrap();
    let outcome = live.finish().unwrap();
    // The oracle chains are Mem-Opt; result multisets are slicing-invariant
    // (Theorem 1), so the comparison still pins the migration.
    let oracle = oracle_instances(&input, &initial, &cuts, &actions);
    assert_live_matches_oracle(&outcome, &oracle);
}

#[test]
fn window_extension_ramps_up_instead_of_resurrecting_history() {
    // No anchor: adding a query larger than the current coverage cannot
    // recover already-discarded state.  The live chain must deliver a
    // *subset* of the fresh chain's results, missing only pairs whose span
    // exceeds the coverage at add time.
    let queries = vec![JoinQuery::new("Q4", TimeDelta::from_secs(4))];
    let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
    let arrivals: Vec<(u64, bool, i64)> = (0..300).map(|i| (2, i % 2 == 0, 0i64)).collect();
    let input = build_input(&arrivals);
    let cut = 200usize;
    let mut live = LiveReslicer::launch(workload, live_options(1, MigrationMode::Eager)).unwrap();
    live.ingest_all(input[..cut].to_vec()).unwrap();
    live.add_query(JoinQuery::new("Q12", TimeDelta::from_secs(12)))
        .unwrap();
    live.ingest_all(input[cut..].to_vec()).unwrap();
    let outcome = live.finish().unwrap();
    let live_q12: BTreeSet<Fingerprint> =
        collected_fingerprints(&outcome.query("Q12").unwrap().collected)
            .into_iter()
            .collect();
    // Fresh chain with both queries over the epoch's input.
    let both = QueryWorkload::new(
        vec![
            JoinQuery::new("Q4", TimeDelta::from_secs(4)),
            JoinQuery::new("Q12", TimeDelta::from_secs(12)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let fresh: BTreeSet<Fingerprint> = reference_epoch_deliveries(&both, &input, cut, input.len())
        .into_iter()
        .find(|(name, _)| name == "Q12")
        .unwrap()
        .1
        .into_iter()
        .collect();
    assert!(
        live_q12.is_subset(&fresh),
        "live results must be a subset of the fresh chain's"
    );
    let old_coverage = TimeDelta::from_secs(4);
    let missing: Vec<&Fingerprint> = fresh.difference(&live_q12).collect();
    assert!(
        !missing.is_empty(),
        "the ramp-up gap should be visible here"
    );
    assert!(
        missing.iter().all(|(_, span, _)| *span >= old_coverage),
        "only pairs wider than the old coverage may be missing: {missing:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole property: random input, random churn schedule, 1 or 4
    /// shards — the live-migrated chain is indistinguishable from freshly
    /// planned per-epoch chains (results) and from a freshly planned final
    /// chain (states).
    #[test]
    fn live_reslicing_is_equivalent_to_fresh_planning(
        arrivals in prop::collection::vec((0u64..6, proptest::bool::ANY, 0i64..4), 60..240),
        initial_picks in prop::collection::btree_set(0usize..POOL.len(), 0..3),
        schedule in prop::collection::vec((20usize..90, proptest::bool::ANY, 0usize..8), 1..5),
        four_shards in proptest::bool::ANY,
        lazy in proptest::bool::ANY,
    ) {
        let initial: Vec<u64> = initial_picks.iter().map(|&i| POOL[i]).collect();
        let shards = if four_shards { 4 } else { 1 };
        let mode = if lazy { MigrationMode::Lazy } else { MigrationMode::Eager };
        check_schedule(&arrivals, &initial, &schedule, shards, mode);
    }
}
