//! Direct property coverage for the chain-maintenance primitives of
//! `core::migration` (Section 5.3), at both the spec and the operator level:
//!
//! * spec-level merge/split round-trips over random workloads and paths,
//! * operator-level merge: result preservation (a probe against the merged
//!   state sees exactly the union of the two slices' states),
//! * operator-level split, both flavours: the eager re-cut partitions by
//!   cross-purge age, and the lazy split-purge path **fills the right half
//!   up** to exactly the eager distribution once enough traffic has flowed,
//! * `rehash_shard_states` round-trip: drain → rehash k→k'→k reproduces the
//!   original states bit for bit, and every intermediate shard holds only
//!   its own keys.

use proptest::prelude::*;
use state_slice_repro::core::{
    merge_slice_operators, merge_spec_slices, rehash_shard_states, split_slice_operator,
    split_slice_operator_eager, split_spec_slice, ChainSpec, JoinQuery, PurgeWatermarks,
    QueryWorkload, SlicedBinaryJoinOp,
};
use state_slice_repro::streamkit::operator::{OpContext, Operator};
use state_slice_repro::streamkit::tuple::{StreamId, Tuple, TupleRole};
use state_slice_repro::streamkit::window::SliceWindow;
use state_slice_repro::streamkit::{JoinCondition, Punctuation, TimeDelta, Timestamp};

fn tup(tenths: u64, stream: StreamId, key: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key])
}

fn workload_of(windows: &[u64]) -> QueryWorkload {
    let queries = windows
        .iter()
        .map(|&w| JoinQuery::new(format!("Q{w}"), TimeDelta::from_secs(w)))
        .collect();
    QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
}

/// Timestamp-ordered random state for one side.  Stored tuples are the
/// *female* reference copies in a real chain, so tag them accordingly.
fn ordered_state(arrivals: &[(u64, i64)], stream: StreamId) -> Vec<Tuple> {
    let mut tenths = 0;
    arrivals
        .iter()
        .map(|&(delta, key)| {
            tenths += delta;
            tup(tenths, stream, key).with_role(TupleRole::Female)
        })
        .collect()
}

/// Collect `(PORT_RESULTS tuples, PORT_NEXT_SLICE items)` from a context.
fn split_outputs(
    ctx: &mut OpContext,
) -> (Vec<Tuple>, Vec<state_slice_repro::streamkit::StreamItem>) {
    use state_slice_repro::core::sliced_binary::{PORT_NEXT_SLICE, PORT_RESULTS};
    let mut results = Vec::new();
    let mut forwarded = Vec::new();
    for (port, item) in ctx.take_outputs() {
        match port {
            PORT_RESULTS => {
                if let Some(t) = item.into_tuple() {
                    results.push(t);
                }
            }
            PORT_NEXT_SLICE => forwarded.push(item),
            _ => {}
        }
    }
    (results, forwarded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spec level: splitting an interior boundary out of a merged chain
    /// restores the chain the merge started from, for random workloads and
    /// random merge positions.
    #[test]
    fn spec_merge_then_split_round_trips(
        windows in prop::collection::btree_set(1u64..40, 2..7),
        merge_pick in 0usize..16,
    ) {
        let windows: Vec<u64> = windows.into_iter().collect();
        let w = workload_of(&windows);
        let memopt = ChainSpec::memory_optimal(&w);
        let idx = merge_pick % (memopt.num_slices() - 1);
        let merged = merge_spec_slices(&w, &memopt, idx).unwrap();
        prop_assert_eq!(merged.num_slices(), memopt.num_slices() - 1);
        merged.validate(&w).unwrap();
        // The removed boundary index is idx + 1 in the original path.
        let boundary_idx = memopt.path()[idx + 1];
        let back = split_spec_slice(&w, &merged, idx, boundary_idx).unwrap();
        prop_assert_eq!(back, memopt);
    }

    /// Operator level: a male probing the merged slice produces exactly the
    /// results of probing the two original slices (state union preserved,
    /// oldest-first order preserved).
    #[test]
    fn operator_merge_preserves_state_and_probe_results(
        left_a in prop::collection::vec((0u64..20, 0i64..3), 0..12),
        right_a in prop::collection::vec((0u64..20, 0i64..3), 0..12),
        probe_key in 0i64..3,
    ) {
        let cond = JoinCondition::equi(0);
        let boundary = 400u64; // tenths: slices [0, 40s) and [40s, 80s)
        // Right slice holds older tuples: offset its arrivals before the
        // left slice's.
        let right_state = ordered_state(&right_a, StreamId::A);
        let offset = 1000 + right_state.last().map(|t| t.ts.as_micros() / 100_000).unwrap_or(0);
        let left_state: Vec<Tuple> = ordered_state(&left_a, StreamId::A)
            .into_iter()
            .map(|mut t| { t.ts = Timestamp::from_millis(t.ts.as_micros() / 1000 + offset * 100); t })
            .collect();
        let mut left = SlicedBinaryJoinOp::for_ab(
            "L", SliceWindow::new(TimeDelta::ZERO, TimeDelta::from_millis(boundary * 100)), cond.clone());
        let mut right = SlicedBinaryJoinOp::for_ab(
            "R",
            SliceWindow::new(TimeDelta::from_millis(boundary * 100), TimeDelta::from_millis(boundary * 200)),
            cond.clone());
        right.set_has_next(false);
        left.load_states(left_state.clone(), Vec::new());
        right.load_states(right_state.clone(), Vec::new());
        let expected: usize = left_state.iter().chain(&right_state)
            .filter(|t| t.value(0).and_then(|v| v.as_int()) == Some(probe_key))
            .count();
        let merged = merge_slice_operators("M", left, right).unwrap();
        prop_assert_eq!(merged.state_a_len(), left_state.len() + right_state.len());
        // Oldest first across the concatenation.
        let (ts_a, _) = merged.state_timestamps();
        prop_assert!(ts_a.windows(2).all(|w| w[0] <= w[1]));
        // A cross-probing male B far in the future would purge everything;
        // use a male at the very end of the merged window instead: nothing
        // expires (all ages < 80 s by construction), everything probes.
        let mut merged = merged;
        merged.set_has_next(false);
        let male_ts = Timestamp::from_millis(
            merged.window().end.as_micros() / 1000 - 1
        );
        let mut ctx = OpContext::new();
        let male = Tuple::of_ints(male_ts, StreamId::B, &[probe_key]).with_role(TupleRole::Male);
        merged.process(0, male.into(), &mut ctx);
        let (results, _) = split_outputs(&mut ctx);
        prop_assert_eq!(results.len(), expected);
    }

    /// Eager split = lazy split + enough traffic: after the lazy split, one
    /// male per stream at the watermarks migrates exactly the tuples the
    /// eager re-cut moves up front (the fill-up path of Section 5.3).
    #[test]
    fn lazy_split_purge_fills_up_to_the_eager_distribution(
        arrivals_a in prop::collection::vec((0u64..30, 0i64..4), 1..15),
        arrivals_b in prop::collection::vec((0u64..30, 0i64..4), 1..15),
        split_tenths in 1u64..99,
        male_gap in 0u64..60,
    ) {
        let cond = JoinCondition::equi(0);
        let window = SliceWindow::new(TimeDelta::ZERO, TimeDelta::from_millis(10_000));
        let state_a = ordered_state(&arrivals_a, StreamId::A);
        let state_b = ordered_state(&arrivals_b, StreamId::B);
        let at = TimeDelta::from_millis(split_tenths * 100);
        let last = state_a.iter().chain(&state_b).map(|t| t.ts).max().unwrap();
        let male_ts = Timestamp::from_micros(last.as_micros() + male_gap * 100_000);
        let wm = PurgeWatermarks { male_a: male_ts, male_b: male_ts };

        let mk = |name: &str| {
            let mut op = SlicedBinaryJoinOp::for_ab(name, window, cond.clone());
            op.load_states(state_a.clone(), state_b.clone());
            op
        };
        // Eager: re-cut immediately.
        let (eager_l, eager_r) =
            split_slice_operator_eager(mk("E"), at, wm, "el", "er").unwrap();
        // Lazy: left keeps everything...
        let (mut lazy_l, mut lazy_r) = split_slice_operator(mk("L"), at, "ll", "lr").unwrap();
        prop_assert_eq!(lazy_l.state_len(), state_a.len() + state_b.len());
        prop_assert_eq!(lazy_r.state_len(), 0);
        // ...until a male per stream (at the same watermarks) cross-purges.
        let mut ctx = OpContext::new();
        for stream in [StreamId::B, StreamId::A] {
            lazy_l.process(
                0,
                Tuple::of_ints(male_ts, stream, &[99]).with_role(TupleRole::Male).into(),
                &mut ctx,
            );
        }
        let (_, forwarded) = split_outputs(&mut ctx);
        for item in forwarded {
            if let state_slice_repro::streamkit::StreamItem::Tuple(t) = item {
                if t.role == TupleRole::Female {
                    lazy_r.process(0, t.into(), &mut ctx);
                }
            }
        }
        let _ = ctx.take_outputs();
        prop_assert_eq!(lazy_l.state_timestamps(), eager_l.state_timestamps(),
            "left slices diverge after fill-up");
        prop_assert_eq!(lazy_r.state_timestamps(), eager_r.state_timestamps(),
            "right slices diverge after fill-up");
        // Nothing was lost or duplicated.
        prop_assert_eq!(
            eager_l.state_len() + eager_r.state_len(),
            state_a.len() + state_b.len()
        );
    }

    /// Rehash round-trip: k → k' → k reproduces the original states exactly,
    /// and each intermediate shard holds only tuples of its own keys.
    /// (Deltas start at 1: tuples with *equal* timestamps may legitimately
    /// come back reordered by shard index, so the bit-exact round-trip is
    /// asserted over strictly increasing per-side timestamps.)
    #[test]
    fn rehash_shard_states_round_trips(
        arrivals_a in prop::collection::vec((1u64..9, 0i64..12), 1..40),
        arrivals_b in prop::collection::vec((1u64..9, 0i64..12), 1..40),
        mid_shards in 2usize..7,
    ) {
        let cond = JoinCondition::equi(0);
        let spec = state_slice_repro::streamkit::ShardSpec::from_condition(
            &cond, StreamId::A, StreamId::B).unwrap();
        let window = SliceWindow::from_secs(0, 50);
        let state_a = ordered_state(&arrivals_a, StreamId::A);
        let state_b = ordered_state(&arrivals_b, StreamId::B);
        let mut op = SlicedBinaryJoinOp::for_ab("J", window, cond.clone()).chain_head();
        op.load_states(state_a.clone(), state_b.clone());
        let original = op.state_tuples();
        let shards = rehash_shard_states(vec![op], mid_shards, &spec).unwrap();
        prop_assert_eq!(shards.len(), mid_shards);
        let total: usize = shards.iter().map(|s| s.state_len()).sum();
        prop_assert_eq!(total, state_a.len() + state_b.len());
        for (i, shard) in shards.iter().enumerate() {
            let (a, b) = shard.state_tuples();
            for t in a.iter().chain(&b) {
                prop_assert_eq!(spec.shard_of(t, mid_shards), i, "tuple on wrong shard");
            }
            let (ts_a, ts_b) = shard.state_timestamps();
            prop_assert!(ts_a.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(ts_b.windows(2).all(|w| w[0] <= w[1]));
        }
        let back = rehash_shard_states(shards, 1, &spec).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].state_tuples(), original);
    }
}

#[test]
fn lazy_split_keeps_punctuations_flowing_to_both_halves() {
    // The fill-up path relies on the logical queue between the halves;
    // punctuations must traverse it so the downstream union keeps making
    // progress during a lazy migration.
    let cond = JoinCondition::Cross;
    let op = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 10), cond).chain_head();
    let (mut left, _right) = split_slice_operator(op, TimeDelta::from_secs(5), "l", "r").unwrap();
    let mut ctx = OpContext::new();
    left.process(
        0,
        Punctuation::new(Timestamp::from_secs(3)).into(),
        &mut ctx,
    );
    let outputs = ctx.take_outputs();
    assert_eq!(outputs.len(), 2, "results + next-slice ports both see it");
    assert!(outputs.iter().all(|(_, item)| item.is_punctuation()));
}

#[test]
fn eager_split_boundary_cases_are_exact() {
    // A tuple exactly `at` old is expired (purge uses `>=`), one tick newer
    // is not; each side is cut by the *opposite* stream's male.
    let cond = JoinCondition::Cross;
    let window = SliceWindow::from_secs(0, 10);
    let mut op = SlicedBinaryJoinOp::for_ab("J", window, cond);
    let a_old = tup(100, StreamId::A, 0); // 10.0 s
    let a_new = tup(101, StreamId::A, 0); // 10.1 s
    let b_any = tup(102, StreamId::B, 0); // 10.2 s
    op.load_states(vec![a_old, a_new], vec![b_any]);
    let wm = PurgeWatermarks {
        // B males reached 15.0 s → A-side ages: 5.0 (expired at 5s) / 4.9.
        male_b: Timestamp::from_millis(15_000),
        // A males reached 10.2 s → B-side age 0: stays left.
        male_a: Timestamp::from_millis(10_200),
    };
    let (left, right) =
        split_slice_operator_eager(op, TimeDelta::from_secs(5), wm, "l", "r").unwrap();
    assert_eq!(left.state_a_len(), 1);
    assert_eq!(right.state_a_len(), 1);
    assert_eq!(left.state_b_len(), 1);
    assert_eq!(right.state_b_len(), 0);
    let (ra, _) = right.state_timestamps();
    assert_eq!(ra, vec![Timestamp::from_millis(10_000)]);
}
