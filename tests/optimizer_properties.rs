//! Integration / property tests for the chain buildup algorithms: Theorem 3
//! (Mem-Opt state-memory optimality) measured on the running system, and the
//! CPU-Opt optimality guarantee against exhaustive search.

use proptest::prelude::*;
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    ChainBuilder, ChainSpec, CostConfig, JoinQuery, QueryWorkload, SharedChainPlan,
};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{Executor, JoinCondition, TimeDelta, Timestamp, Tuple};

fn workload_from_windows(windows: &[u64]) -> QueryWorkload {
    QueryWorkload::new(
        windows
            .iter()
            .enumerate()
            .map(|(i, &w)| JoinQuery::new(format!("Q{}", i + 1), TimeDelta::from_secs(w)))
            .collect(),
        JoinCondition::equi(0),
    )
    .unwrap()
}

fn dense_streams(n: u64, keys: i64) -> Vec<Tuple> {
    let a = (0..n).map(|i| {
        Tuple::of_ints(
            Timestamp::from_millis(i * 200),
            StreamId::A,
            &[(i as i64) % keys, 0],
        )
    });
    let b = (0..n).map(|i| {
        Tuple::of_ints(
            Timestamp::from_millis(i * 200 + 100),
            StreamId::B,
            &[(i as i64) % keys, 0],
        )
    });
    merge_streams(a.collect(), b.collect())
}

/// Measured peak state of a chain plan over a fixed input.
fn measured_peak_state(workload: &QueryWorkload, spec: &ChainSpec, input: &[Tuple]) -> usize {
    let shared = SharedChainPlan::build(workload, spec, &PlannerOptions::default()).unwrap();
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input.to_vec()).unwrap();
    let report = exec.run().unwrap();
    report.memory.peak_state_tuples
}

#[test]
fn theorem_3_chain_state_equals_single_join_state_without_selections() {
    // Without selections, every slicing holds exactly the same total state as
    // the single largest-window join: the slices partition the window.
    let workload = workload_from_windows(&[2, 5, 9]);
    let input = dense_streams(200, 5);
    let memopt = ChainSpec::memory_optimal(&workload);
    let merged = ChainSpec::fully_merged(&workload);
    let partial = ChainSpec::from_path(&workload, &[0, 2, 3]).unwrap();
    let a = measured_peak_state(&workload, &memopt, &input);
    let b = measured_peak_state(&workload, &merged, &input);
    let c = measured_peak_state(&workload, &partial, &input);
    // Peak states agree within a tiny tolerance due to queue-position timing
    // (tuples in flight between slices are not join state).
    let max = a.max(b).max(c) as f64;
    let min = a.min(b).min(c) as f64;
    assert!(
        (max - min) / max < 0.05,
        "peak states diverge: memopt={a}, merged={b}, partial={c}"
    );
}

#[test]
fn cpu_opt_matches_exhaustive_search_for_paper_window_sets() {
    for windows in [
        vec![
            2.5f64, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0,
        ],
        vec![
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 20.0, 30.0,
        ],
        vec![
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 25.0, 26.0, 27.0, 28.0, 29.0, 30.0,
        ],
    ] {
        let workload = QueryWorkload::new(
            windows
                .iter()
                .enumerate()
                .map(|(i, &w)| JoinQuery::new(format!("Q{}", i + 1), TimeDelta::from_secs_f64(w)))
                .collect(),
            JoinCondition::equi(0),
        )
        .unwrap();
        let builder = ChainBuilder::new(workload);
        for &(lambda, sel_join, csys) in &[
            (20.0, 0.025, 10.0),
            (80.0, 0.025, 10.0),
            (40.0, 0.4, 1.0),
            (40.0, 0.001, 20.0),
        ] {
            let cfg = CostConfig {
                lambda_a: lambda,
                lambda_b: lambda,
                sel_join,
                csys,
            };
            let fast = builder.cpu_optimal(&cfg).unwrap();
            let slow = builder.cpu_optimal_brute_force(&cfg).unwrap();
            assert!(
                (fast.estimated_cpu - slow.estimated_cpu).abs()
                    <= 1e-6 * slow.estimated_cpu.max(1.0),
                "Dijkstra result {} differs from exhaustive optimum {}",
                fast.estimated_cpu,
                slow.estimated_cpu
            );
        }
    }
}

#[test]
fn skewed_distributions_lead_cpu_opt_to_merge_more() {
    let uniform = ChainBuilder::new(workload_from_windows(&[
        3, 6, 9, 12, 15, 18, 21, 24, 27, 30,
    ]));
    let skewed = ChainBuilder::new(workload_from_windows(&[1, 2, 3, 4, 5, 26, 27, 28, 29, 30]));
    let cfg = CostConfig {
        lambda_a: 40.0,
        lambda_b: 40.0,
        sel_join: 0.025,
        csys: 10.0,
    };
    let uniform_slices = uniform.cpu_optimal(&cfg).unwrap().spec.num_slices();
    let skewed_slices = skewed.cpu_optimal(&cfg).unwrap().spec.num_slices();
    assert!(
        skewed_slices <= uniform_slices,
        "skewed windows should merge at least as much (uniform {uniform_slices}, skewed {skewed_slices})"
    );
    assert!(skewed_slices < 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CPU-Opt is never worse than Mem-Opt or the fully merged chain under
    /// its own cost model, for arbitrary window sets and statistics.
    #[test]
    fn cpu_opt_is_at_least_as_good_as_the_extremes(
        windows in prop::collection::btree_set(1u64..60, 2..10),
        lambda in 5.0f64..100.0,
        sel_join in 0.001f64..0.5,
        csys in 0.1f64..20.0,
    ) {
        let windows: Vec<u64> = windows.into_iter().collect();
        let workload = workload_from_windows(&windows);
        let builder = ChainBuilder::new(workload.clone());
        let cfg = CostConfig { lambda_a: lambda, lambda_b: lambda, sel_join, csys };
        let best = builder.cpu_optimal(&cfg).unwrap();
        let memopt_cost = builder.estimate_cpu(&builder.memory_optimal(), &cfg);
        let merged_cost = builder.estimate_cpu(&ChainSpec::fully_merged(&workload), &cfg);
        prop_assert!(best.estimated_cpu <= memopt_cost + 1e-9);
        prop_assert!(best.estimated_cpu <= merged_cost + 1e-9);
        // And the chosen spec's cost recomputed independently matches.
        let recomputed = builder.estimate_cpu(&best.spec, &cfg);
        prop_assert!((recomputed - best.estimated_cpu).abs() < 1e-6 * recomputed.max(1.0));
    }
}
