//! Robustness fuzzing for the query language front end
//! (`ss_query`: lexer → parser → translate).
//!
//! Property: for arbitrary input — both unconstrained character soups and
//! "almost valid" token soups built from the language's own vocabulary — the
//! pipeline must return `Ok` or `Err`, never panic, and whatever parses must
//! also translate (against a registry) without panicking.

use proptest::prelude::*;
use ss_query::{parse_query, tokenize, translate, SchemaRegistry};
use state_slice_repro::query as ss_query;
use state_slice_repro::streamkit::tuple::{DataType, Field};
use state_slice_repro::streamkit::Schema;

/// The language's own vocabulary plus hostile fragments: keywords, idents,
/// operators, numbers that stress the lexer (`1.2.3`, huge, dotted), quote
/// fragments, and junk characters.
const VOCAB: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "WINDOW",
    "select",
    "from",
    "where",
    "and",
    "window",
    "A",
    "B",
    "T",
    "H",
    "Temperature",
    "Humidity",
    "x",
    "y",
    "_id",
    "value9",
    "*",
    ",",
    ".",
    "=",
    "!=",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "0",
    "1",
    "2.5",
    "100",
    "1.2.3",
    "9999999999999999999999999",
    "0.000000000000001",
    "60",
    "min",
    "sec",
    "ms",
    "hour",
    "lightyears",
    "'Seoul'",
    "'",
    "''",
    "'unterminated",
    "!",
    "#",
    "..",
    ",,",
    "A.x",
    "B.y",
    "A.*",
];

fn registry() -> SchemaRegistry {
    let mut schemas = SchemaRegistry::new();
    schemas.register(
        "T",
        Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("value9", DataType::Float),
        ]),
    );
    schemas.register("H", Schema::new(vec![Field::new("y", DataType::Int)]));
    schemas.register(
        "Temperature",
        Schema::new(vec![Field::new("x", DataType::Int)]),
    );
    schemas.register(
        "Humidity",
        Schema::new(vec![Field::new("y", DataType::Int)]),
    );
    schemas
}

/// The whole front end must be panic-free; parsed specs must translate
/// without panicking either (errors are fine — most soups reference unknown
/// streams or columns).
fn assert_front_end_is_total(text: &str) {
    let _ = tokenize(text);
    if let Ok(spec) = parse_query(text) {
        let _ = translate(&spec, &registry());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Token soups from the language's own vocabulary: the parser sees
    /// plausible-looking-but-broken clause structure.
    #[test]
    fn token_soups_never_panic(
        picks in prop::collection::vec(0usize..VOCAB.len(), 0..30),
        spaced in proptest::bool::ANY,
    ) {
        let sep = if spaced { " " } else { "" };
        let text: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(sep);
        assert_front_end_is_total(&text);
    }

    /// Unconstrained character soups: the lexer sees arbitrary (including
    /// non-ASCII) input.
    #[test]
    fn character_soups_never_panic(
        chars in prop::collection::vec(0u32..0x11_0000, 0..60),
    ) {
        let text: String = chars
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        assert_front_end_is_total(&text);
    }

    /// Near-valid queries with fuzzed windows and predicates: exercise the
    /// deep end of the parser (conditions, window units) and the translator.
    #[test]
    fn near_valid_queries_never_panic(
        window_num in 0usize..8,
        unit in 0usize..8,
        cond in 0usize..VOCAB.len(),
        tail in 0usize..VOCAB.len(),
    ) {
        let numbers = ["0", "1", "2.5", "1.2.3", "9999999999999999999999999",
                       "0.0000001", "60", "007"];
        let units = ["min", "sec", "ms", "hour", "lightyears", "s", "", "minutes"];
        let text = format!(
            "SELECT A.* FROM T A, H B WHERE A.x = B.y AND {} WINDOW {} {} {}",
            VOCAB[cond], numbers[window_num], units[unit], VOCAB[tail],
        );
        assert_front_end_is_total(&text);
    }
}

#[test]
fn known_hostile_inputs_error_cleanly() {
    for text in [
        "",
        "SELECT",
        "SELECT A.*",
        "SELECT A.* FROM",
        "SELECT A.* FROM T A, H B WHERE WINDOW 1 sec",
        "SELECT A.* FROM T A, H B WINDOW",
        "SELECT A.* FROM T A, H B WINDOW 99999999999999999999999999999 hour",
        "SELECT A.* FROM T A, H B WINDOW 1.2.3 sec",
        "SELECT A.* FROM T A, H B, X C WINDOW 1 sec",
        "SELECT A.* FROM T A, H B WHERE A.x = A.x WINDOW 1 sec junk",
        "SELECT .* FROM . ., . . WINDOW . .",
        "'",
        "''",
        "'''",
        ".",
        "..",
        ". . .",
    ] {
        assert!(parse_query(text).is_err(), "expected an error for {text:?}");
    }
    // A valid query against a registry missing the streams errors (not
    // panics) in translate.
    let spec = parse_query("SELECT A.* FROM Nope A, Nada B WINDOW 1 sec").unwrap();
    assert!(translate(&spec, &registry()).is_err());
}
