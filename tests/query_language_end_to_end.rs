//! End-to-end test: queries written in the SQL-like language are parsed,
//! translated against stream schemas, registered as a shared workload,
//! executed through a state-slice chain and checked against the oracle.

use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    expected_results, ChainBuilder, JoinQuery, QueryWorkload, SharedChainPlan,
};
use state_slice_repro::query::{parse_query, translate, SchemaRegistry};
use state_slice_repro::streamkit::tuple::{DataType, Field, StreamId};
use state_slice_repro::streamkit::{Executor, Schema, Timestamp, Tuple, Value};

fn schemas() -> SchemaRegistry {
    let mut r = SchemaRegistry::new();
    r.register(
        "Temperature",
        Schema::new(vec![
            Field::new("LocationId", DataType::Int),
            Field::new("Value", DataType::Int),
        ]),
    );
    r.register(
        "Humidity",
        Schema::new(vec![
            Field::new("LocationId", DataType::Int),
            Field::new("Value", DataType::Int),
        ]),
    );
    r
}

fn sensor_streams() -> (Vec<Tuple>, Vec<Tuple>) {
    let a = (0..300u64)
        .map(|s| {
            Tuple::new(
                Timestamp::from_secs(s),
                StreamId::A,
                vec![
                    Value::Int((s % 8) as i64),
                    Value::Int((s * 11 % 100) as i64),
                ],
            )
        })
        .collect();
    let b = (0..300u64)
        .map(|s| {
            Tuple::new(
                Timestamp::from_secs(s),
                StreamId::B,
                vec![Value::Int((s % 8) as i64), Value::Int(0)],
            )
        })
        .collect();
    (a, b)
}

#[test]
fn queries_from_text_to_chain_to_results() {
    let registry = schemas();
    let texts = [
        ("Q1", "SELECT A.* FROM Temperature A, Humidity B WHERE A.LocationId = B.LocationId WINDOW 30 sec"),
        ("Q2", "SELECT A.* FROM Temperature A, Humidity B WHERE A.LocationId = B.LocationId AND A.Value > 60 WINDOW 2 min"),
        ("Q3", "SELECT A.* FROM Temperature A, Humidity B WHERE A.LocationId = B.LocationId AND A.Value > 60 WINDOW 4 min"),
    ];
    let mut queries = Vec::new();
    let mut join_condition = None;
    for (name, text) in texts {
        let spec = parse_query(text).expect("query parses");
        let translated = translate(&spec, &registry).expect("query translates");
        join_condition = Some(translated.join_condition.clone());
        queries.push(JoinQuery::with_filter(
            name,
            translated.window,
            translated.filter_a,
        ));
    }
    let workload = QueryWorkload::new(queries, join_condition.unwrap()).unwrap();
    assert_eq!(workload.len(), 3);
    assert!(workload.has_selections());

    let chain = ChainBuilder::new(workload.clone()).memory_optimal();
    let shared = SharedChainPlan::build(&workload, &chain, &PlannerOptions::default()).unwrap();
    let (a, b) = sensor_streams();
    let input = merge_streams(a, b);
    let expected = expected_results(&workload, &input);

    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input).unwrap();
    let report = exec.run().unwrap();
    for q in workload.queries() {
        assert_eq!(
            report.sink_count(&q.name),
            expected[&q.name].len() as u64,
            "query {} result count mismatch",
            q.name
        );
    }
    // The filtered 2-minute query can never receive more results than the
    // filtered 4-minute query.
    assert!(report.sink_count("Q3") >= report.sink_count("Q2"));
}

#[test]
fn window_units_affect_the_chain_shape() {
    let registry = schemas();
    let small = translate(
        &parse_query(
            "SELECT A.* FROM Temperature A, Humidity B WHERE A.LocationId = B.LocationId WINDOW 1500 ms",
        )
        .unwrap(),
        &registry,
    )
    .unwrap();
    let large = translate(
        &parse_query(
            "SELECT A.* FROM Temperature A, Humidity B WHERE A.LocationId = B.LocationId WINDOW 1 hour",
        )
        .unwrap(),
        &registry,
    )
    .unwrap();
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("small", small.window),
            JoinQuery::new("large", large.window),
        ],
        small.join_condition,
    )
    .unwrap();
    let chain = ChainBuilder::new(workload.clone()).memory_optimal();
    assert_eq!(chain.num_slices(), 2);
    assert_eq!(chain.slices()[0].window.end.as_micros(), 1_500_000);
    assert_eq!(chain.slices()[1].window.end.as_micros(), 3_600_000_000);
}
