//! Differential suite for crash recovery (`core::recovery`).
//!
//! Property: a shard crash is **invisible in the results**.  Whatever fault
//! fires — a worker panic at an arbitrary punctuation epoch, a poisoned run,
//! a ring stall — a session driven by the [`RecoverySupervisor`] delivers
//! exactly the per-sink result multisets of an uninterrupted run fed the
//! same input, and its final per-shard per-slice join states (compared
//! structurally via a drained-boundary [`Checkpoint`]) are identical too.
//!
//! The protocol this pins: checkpoints are aligned to drained punctuation
//! boundaries (a consistent cut — union buffers empty, join states hold
//! exactly their slice windows), sink counts and ingest counters restore
//! *absolutely*, and the replay ring holds exactly the post-checkpoint
//! input, so recovery re-delivers post-checkpoint results exactly once.
//!
//! The deterministic case pins the interesting trajectory — a guaranteed
//! mid-stream worker panic on a multi-shard session — and the proptests
//! sweep random inputs, checkpoint intervals, crash epochs and seed-derived
//! fault plans where firing is incidental: equivalence must hold whether or
//! not the fault ever triggers.

use std::sync::Mutex;

use proptest::prelude::*;
use state_slice_repro::core::planner::{PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::recovery::{RecoveryConfig, RecoverySupervisor};
use state_slice_repro::core::verify::collected_fingerprints;
use state_slice_repro::core::{
    ChainPlanFactory, ChainSpec, JoinQuery, QueryWorkload, SharedChainPlan,
};
use state_slice_repro::streamkit::checkpoint::ShardCheckpoint;
use state_slice_repro::streamkit::fault::FaultPlan;
use state_slice_repro::streamkit::predicate::CmpOp;
use state_slice_repro::streamkit::punctuation::Punctuation;
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{
    CostCounters, Executor, ExecutorConfig, JoinCondition, TimeDelta, Timestamp, Tuple,
};

type Fingerprint = (Timestamp, TimeDelta, Timestamp);

/// Worker panics unwind through the default hook and spam stderr; silence
/// it for the duration of each test.  Process-global, so serialise.
static PANIC_HOOK_LOCK: Mutex<()> = Mutex::new(());

fn quiet<R>(f: impl FnOnce() -> R) -> R {
    let _guard = PANIC_HOOK_LOCK.lock().unwrap();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

const WINDOWS: [u64; 2] = [4, 16];

/// Which `JoinState` mode the workload's condition selects: `Equi` drives
/// the hash-indexed states, `Band` the band-indexed (value-ordered) ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Equi,
    Band,
}

/// The band half-width used by [`Mode::Band`] tuples and their condition.
const BAND_W: i64 = 2;

impl Mode {
    /// The join condition: plain key equality, or the two-sided band
    /// `|a.key − b.key| ≤ W` over materialised `[key, lo, hi]` endpoints
    /// (written from both sides so either stored stream classifies).
    fn condition(self) -> JoinCondition {
        match self {
            Mode::Equi => JoinCondition::equi(0),
            Mode::Band => {
                let theta = |left_field, op, right_field| JoinCondition::Theta {
                    left_field,
                    op,
                    right_field,
                };
                JoinCondition::And(
                    Box::new(JoinCondition::And(
                        Box::new(theta(0, CmpOp::Ge, 1)),
                        Box::new(theta(0, CmpOp::Le, 2)),
                    )),
                    Box::new(JoinCondition::And(
                        Box::new(theta(1, CmpOp::Le, 0)),
                        Box::new(theta(2, CmpOp::Ge, 0)),
                    )),
                )
            }
        }
    }

    fn tuple(self, ts: Timestamp, stream: StreamId, key: i64) -> Tuple {
        match self {
            Mode::Equi => Tuple::of_ints(ts, stream, &[key]),
            Mode::Band => Tuple::of_ints(ts, stream, &[key, key - BAND_W, key + BAND_W]),
        }
    }

    fn workload(self) -> QueryWorkload {
        let queries = WINDOWS
            .iter()
            .map(|&w| JoinQuery::new(format!("Q{w}"), TimeDelta::from_secs(w)))
            .collect();
        QueryWorkload::new(queries, self.condition()).unwrap()
    }
}

fn factory(mode: Mode, shards: usize) -> ChainPlanFactory {
    let wl = mode.workload();
    let spec = ChainSpec::memory_optimal(&wl);
    ChainPlanFactory::new(
        wl,
        spec,
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default().with_shards(shards)
        },
    )
}

fn supervisor(mode: Mode, shards: usize, every: u64) -> RecoverySupervisor {
    RecoverySupervisor::launch(
        factory(mode, shards),
        ExecutorConfig::default(),
        RecoveryConfig {
            checkpoint_every_epochs: every,
            ..RecoveryConfig::default()
        },
    )
    .unwrap()
}

/// One simulated second of input: an A and a B tuple plus the punctuation
/// that closes the second (one punctuation epoch each).
#[derive(Debug, Clone)]
struct Second {
    key_a: i64,
    key_b: i64,
}

/// Feed `seconds`, draining (`run`, which may checkpoint) after each cut
/// position.  Returns the per-query sorted fingerprints and the final
/// per-shard states captured at a forced drained-boundary checkpoint.
fn drive(
    sup: &mut RecoverySupervisor,
    mode: Mode,
    seconds: &[Second],
    cuts: &[usize],
) -> (Vec<(String, Vec<Fingerprint>)>, Vec<ShardCheckpoint>) {
    let mut cut_iter = cuts.iter().peekable();
    for (t, s) in seconds.iter().enumerate() {
        let ts = Timestamp::from_secs(t as u64);
        sup.ingest(mode.tuple(ts, StreamId::A, s.key_a)).unwrap();
        sup.ingest(mode.tuple(ts, StreamId::B, s.key_b)).unwrap();
        sup.ingest(Punctuation::new(ts)).unwrap();
        while cut_iter.peek() == Some(&&t) {
            cut_iter.next();
            sup.run().unwrap();
        }
    }
    sup.run().unwrap();
    sup.checkpoint_now().unwrap();
    let shards = sup.last_checkpoint().unwrap().shards.clone();
    let mut results: Vec<(String, Vec<Fingerprint>)> = WINDOWS
        .iter()
        .map(|&w| {
            let name = format!("Q{w}");
            let mut fps = collected_fingerprints(&sup.sink_collected(&name));
            fps.sort_unstable();
            (name, fps)
        })
        .collect();
    results.sort();
    results
        .iter()
        .for_each(|(_, fps)| debug_assert!(fps.windows(2).all(|w| w[0] <= w[1])));
    (results, shards)
}

/// The property: with `fault` armed on shard 0, results and final states
/// must match an uninterrupted run of the same input.  Returns the number
/// of recoveries the faulty run logged.
fn assert_equivalent(
    mode: Mode,
    shards: usize,
    every: u64,
    seconds: &[Second],
    cuts: &[usize],
    fault: FaultPlan,
) -> usize {
    let mut oracle = supervisor(mode, shards, every);
    let (expected_results, expected_states) = drive(&mut oracle, mode, seconds, cuts);

    let mut sup = supervisor(mode, shards, every);
    sup.arm_fault(0, fault).unwrap();
    let (results, states) = quiet(|| drive(&mut sup, mode, seconds, cuts));

    assert_eq!(
        results,
        expected_results,
        "recovered per-sink multisets diverged from the uninterrupted oracle \
         ({} recoveries: {:?})",
        sup.log().recoveries().len(),
        sup.log().recoveries()
    );
    assert_eq!(
        states, expected_states,
        "recovered per-shard per-slice states diverged from the oracle"
    );
    sup.log().recoveries().len()
}

#[test]
fn a_worker_panic_at_a_punctuation_boundary_is_invisible() {
    let seconds: Vec<Second> = (0..24)
        .map(|t| Second {
            key_a: (t % 5) as i64,
            key_b: ((t * 3) % 5) as i64,
        })
        .collect();
    let cuts = [5, 11, 17];
    for shards in [1, 3] {
        let recoveries = assert_equivalent(
            Mode::Equi,
            shards,
            4,
            &seconds,
            &cuts,
            FaultPlan::panic_at(9),
        );
        assert_eq!(recoveries, 1, "{shards} shard(s): the panic must fire once");
    }
}

#[test]
fn a_crash_with_band_indexed_states_is_invisible() {
    // Band conditions have no equi component, so the chain runs single-shard
    // (the planner refuses to hash-partition them); the recovered band index
    // is rebuilt from the checkpointed tuples and must behave identically.
    let seconds: Vec<Second> = (0..24)
        .map(|t| Second {
            key_a: (t % 9) as i64,
            key_b: ((t * 5) % 9) as i64,
        })
        .collect();
    let cuts = [5, 11, 17];
    let recoveries = assert_equivalent(Mode::Band, 1, 4, &seconds, &cuts, FaultPlan::panic_at(9));
    assert_eq!(recoveries, 1, "the panic must fire once");
}

/// Checkpoint round-trip for *indexed* join states: capture a drained
/// executor mid-stream, restore into a fresh plan instance, then feed both
/// the same continuation.  The restored index (hash-bucketed or
/// band-ordered) must not just produce the same results — it must do the
/// same *work*: every cost counter's continuation delta matches exactly,
/// and a final capture of both executors is identical.
#[test]
fn an_indexed_state_checkpoint_round_trip_preserves_probe_behaviour() {
    for mode in [Mode::Equi, Mode::Band] {
        let wl = mode.workload();
        let spec = ChainSpec::memory_optimal(&wl);
        let options = PlannerOptions {
            retain_results: true,
            index_join_state: true,
            ..PlannerOptions::default()
        };
        let mut original =
            Executor::new(SharedChainPlan::build(&wl, &spec, &options).unwrap().plan);
        let mut restored =
            Executor::new(SharedChainPlan::build(&wl, &spec, &options).unwrap().plan);

        let feed = |exec: &mut Executor, range: std::ops::Range<u64>| {
            for t in range {
                let ts = Timestamp::from_secs(t);
                exec.ingest(CHAIN_ENTRY, mode.tuple(ts, StreamId::A, (t % 9) as i64))
                    .unwrap();
                exec.ingest(
                    CHAIN_ENTRY,
                    mode.tuple(ts, StreamId::B, ((t * 5) % 9) as i64),
                )
                .unwrap();
                exec.ingest(CHAIN_ENTRY, Punctuation::new(ts)).unwrap();
            }
            exec.run().unwrap().totals
        };
        let delta = |after: &CostCounters, before: &CostCounters| {
            (
                after.probe_comparisons - before.probe_comparisons,
                after.purge_comparisons - before.purge_comparisons,
                after.route_comparisons - before.route_comparisons,
                after.union_comparisons - before.union_comparisons,
                after.filter_comparisons - before.filter_comparisons,
                after.split_comparisons - before.split_comparisons,
            )
        };

        let before = feed(&mut original, 0..14);
        let ckpt = ShardCheckpoint::capture(&mut original).unwrap();
        ckpt.restore(&mut restored).unwrap();

        let after = feed(&mut original, 14..30);
        let continued = feed(&mut restored, 14..30);
        assert!(
            after.probe_comparisons > before.probe_comparisons,
            "{mode:?}: the continuation must probe"
        );
        assert_eq!(
            delta(&continued, &CostCounters::default()),
            delta(&after, &before),
            "{mode:?}: restored index did different probe work than the original"
        );
        for &w in &WINDOWS {
            let name = format!("Q{w}");
            let sink = |exec: &Executor| {
                collected_fingerprints(exec.plan().sink(&name).unwrap().collected())
            };
            assert_eq!(sink(&original), sink(&restored), "{mode:?}: {name} results");
        }
        assert_eq!(
            ShardCheckpoint::capture(&mut original).unwrap(),
            ShardCheckpoint::capture(&mut restored).unwrap(),
            "{mode:?}: final states diverged after the round trip"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A guaranteed worker panic at an arbitrary punctuation epoch, random
    /// keys and drain schedule: the crash may land before the first
    /// checkpoint, right on one, or never (epoch past the end of input).
    #[test]
    fn a_crash_at_any_punctuation_epoch_recovers_exactly(
        keys in prop::collection::vec((0i64..5, 0i64..5), 12..40),
        shards in 1usize..4,
        every in 1u64..7,
        crash_epoch in 1u64..48,
        cuts in prop::collection::vec(0usize..40, 1..5),
        band in proptest::bool::ANY,
    ) {
        let seconds: Vec<Second> = keys
            .into_iter()
            .map(|(key_a, key_b)| Second { key_a, key_b })
            .collect();
        let mut cuts = cuts;
        cuts.sort_unstable();
        cuts.dedup();
        // Band chains are single-shard (no equi key to partition by).
        let (mode, shards) = if band { (Mode::Band, 1) } else { (Mode::Equi, shards) };
        assert_equivalent(mode, shards, every, &seconds, &cuts, FaultPlan::panic_at(crash_epoch));
    }

    /// Seed-derived fault plans (panic, stall or poisoned run at a
    /// seed-chosen epoch): whatever the seed draws, equivalence holds.
    #[test]
    fn seeded_fault_plans_never_change_the_results(
        keys in prop::collection::vec((0i64..5, 0i64..5), 12..32),
        shards in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let seconds: Vec<Second> = keys
            .into_iter()
            .map(|(key_a, key_b)| Second { key_a, key_b })
            .collect();
        let fault = FaultPlan::from_seed(seed, 16);
        assert_equivalent(Mode::Equi, shards, 4, &seconds, &[7, 15], fault);
    }
}
