//! Property test for sharded parallel execution: the shard count is
//! invisible.  For random equi-join workloads, a chain hash-partitioned
//! across 4 shards (one plan instance per shard, each on its own worker
//! thread) must deliver exactly the same per-sink result multiset as the
//! 1-shard run, and the comparison counters that scale with the *output*
//! must match exactly:
//!
//! * `probe_comparisons` — an equi probe touches only its key bucket, and
//!   all tuples of one key class live on one shard, so each probe sees the
//!   identical candidate set in either layout;
//! * `route_comparisons`, `union_comparisons` — one per routed/released
//!   result tuple, and the result multiset is identical;
//! * `filter_comparisons` — the lineage annotator evaluates each A tuple
//!   once (in exactly one shard) and residual selections fire per result.
//!
//! `purge_comparisons` is the one counter that may legitimately *shrink*
//! under sharding: a female is lazily migrated to the next slice only when a
//! later male of the *same shard* arrives, so shard-local tails can leave
//! state unpurged that the global run would have migrated.  The test pins
//! `sharded <= single` for it.

use proptest::prelude::*;
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{ChainPlanFactory, ChainSpec, JoinQuery, QueryWorkload};
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{
    CostCounters, JoinCondition, Predicate, TimeDelta, Timestamp, Tuple,
};

fn tuple(stream: StreamId, tenths: u64, key: i64, value: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key, value])
}

/// Per-query sorted result fingerprints plus the merged cost counters.
type ShardOutcome = (Vec<(String, Vec<(Timestamp, TimeDelta)>)>, CostCounters);

fn run_with_shards(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    input: &[Tuple],
    shards: usize,
) -> ShardOutcome {
    let factory = ChainPlanFactory::new(
        workload.clone(),
        spec.clone(),
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        }
        .with_shards(shards),
    );
    let mut exec = factory.sharded().expect("sharded executor builds");
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    let report = exec.run().expect("run");
    let results = workload
        .queries()
        .iter()
        .map(|q| {
            let mut fp: Vec<(Timestamp, TimeDelta)> = exec
                .sink_collected(&q.name)
                .iter()
                .map(|t| (t.ts, t.origin_span))
                .collect();
            fp.sort_unstable();
            assert_eq!(
                fp.len() as u64,
                report.sink_count(&q.name),
                "retained tuples agree with the merged sink count"
            );
            (q.name.clone(), fp)
        })
        .collect();
    (results, report.totals)
}

fn assert_shard_invariant(single: &ShardOutcome, sharded: &ShardOutcome) {
    // Identical per-sink result multisets.
    assert_eq!(single.0, sharded.0);
    // Output-scaling comparison counters match exactly.
    assert_eq!(single.1.probe_comparisons, sharded.1.probe_comparisons);
    assert_eq!(single.1.route_comparisons, sharded.1.route_comparisons);
    assert_eq!(single.1.union_comparisons, sharded.1.union_comparisons);
    assert_eq!(single.1.filter_comparisons, sharded.1.filter_comparisons);
    assert_eq!(single.1.split_comparisons, sharded.1.split_comparisons);
    assert_eq!(single.1.items_dropped, 0);
    assert_eq!(sharded.1.items_dropped, 0);
    // Lazy cross-purging can only do less work per shard (see module docs).
    assert!(sharded.1.purge_comparisons <= single.1.purge_comparisons);
}

#[test]
fn four_shards_match_one_shard_on_a_fixed_stream() {
    let workload = QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::with_filter("Q2", TimeDelta::from_secs(7), Predicate::gt(1, 3i64)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..300u64 {
        a.push(tuple(StreamId::A, i * 2, (i % 9) as i64, (i % 8) as i64));
        b.push(tuple(StreamId::B, i * 2 + 1, (i * 5 % 9) as i64, 0));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    let single = run_with_shards(&workload, &spec, &input, 1);
    let sharded = run_with_shards(&workload, &spec, &input, 4);
    assert_shard_invariant(&single, &sharded);
    assert!(
        single.0.iter().any(|(_, r)| !r.is_empty()),
        "workload produces results"
    );
    assert!(single.1.probe_comparisons > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for random streams, random window sets, random key
    /// cardinalities, optional selections and both Mem-Opt and fully merged
    /// slicings, a 4-shard parallel run is indistinguishable from the
    /// 1-shard run (per-sink multisets and output-scaling counters).
    #[test]
    fn shard_count_is_invisible(
        a_arrivals in prop::collection::vec((0u64..300, 0i64..8, 0i64..8), 1..60),
        b_arrivals in prop::collection::vec((0u64..300, 0i64..8), 1..60),
        windows in prop::collection::btree_set(1u64..15, 1..4),
        with_filter in proptest::bool::ANY,
        merge_all in proptest::bool::ANY,
    ) {
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k, v)| tuple(StreamId::A, t, k, v))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k)| tuple(StreamId::B, t, k, 0))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let queries: Vec<JoinQuery> = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let window = TimeDelta::from_secs(w);
                if with_filter && i > 0 {
                    JoinQuery::with_filter(format!("Q{i}"), window, Predicate::gt(1, 3i64))
                } else {
                    JoinQuery::new(format!("Q{i}"), window)
                }
            })
            .collect();
        let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
        let input = merge_streams(a, b);
        let spec = if merge_all {
            ChainSpec::fully_merged(&workload)
        } else {
            ChainSpec::memory_optimal(&workload)
        };
        let single = run_with_shards(&workload, &spec, &input, 1);
        let sharded = run_with_shards(&workload, &spec, &input, 4);
        assert_shard_invariant(&single, &sharded);
    }
}
