//! Differential property test for skew-aware hot-key routing: replicating
//! hot keys is invisible in the results.  For Zipf-skewed equi-join streams,
//! an N-shard worker pool with hot-key replication enabled (probe side
//! broadcast to every shard, build side spread round-robin) must deliver
//! exactly the same per-sink result multiset as the 1-shard reference run,
//! and the output-scaling comparison counters must match exactly:
//!
//! * `probe_comparisons` — an A tuple lives on exactly one shard and every
//!   hot B tuple it can match is present there (broadcast or migrated), so
//!   each (a, b) pair is probed exactly once, just like cold hash routing;
//! * `route_comparisons`, `union_comparisons`, `filter_comparisons`,
//!   `split_comparisons` — one per routed/released/filtered result tuple,
//!   and the result multiset is identical.
//!
//! `purge_comparisons` is NOT pinned in either direction here: replication
//! adds B-state copies to every shard (more purge work), while lazy shard-
//! local migration defers purges (less purge work) — the two effects can
//! dominate either way.
//!
//! The final-state invariant is pinned instead of the purge counter: every
//! hot-key probe-side tuple the 1-shard reference still holds after the run
//! must be resident in *every* shard of the skew-aware run (shards purge
//! lazily on local arrivals, so they can only retain more than the
//! reference, never less).
//!
//! `SS_TEST_SHARDS` (default 4, minimum 2) sets the pool width so CI can
//! sweep shard counts.

use proptest::prelude::*;
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    ChainPlanFactory, ChainSpec, JoinQuery, QueryWorkload, SlicedBinaryJoinOp,
};
use state_slice_repro::streamkit::join_state::tuple_key;
use state_slice_repro::streamkit::tuple::{KeyClass, StreamId};
use state_slice_repro::streamkit::{
    CostCounters, JoinCondition, Predicate, SkewConfig, TimeDelta, Timestamp, Tuple,
};
use std::collections::HashMap;

fn tuple(stream: StreamId, tenths: u64, key: i64, value: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key, value])
}

/// Pool width for the skew-aware run (`SS_TEST_SHARDS`, default 4).
fn test_shards() -> usize {
    std::env::var("SS_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

/// Thresholds low enough that short test streams trigger promotions.
fn eager_skew() -> SkewConfig {
    SkewConfig {
        hot_share: 0.2,
        min_observations: 12,
        sketch_capacity: 8,
        max_hot_keys: 2,
        demote_observations: 0,
    }
}

/// Fingerprint of one retained probe-side (stream B) state tuple.
type StateFp = (Timestamp, i64);

/// Per-query sorted result fingerprints, merged cost counters, promoted hot
/// key hashes, and per-shard hot-key B-state fingerprints (sorted).
struct Outcome {
    results: Vec<(String, Vec<(Timestamp, TimeDelta)>)>,
    totals: CostCounters,
    hot_keys: Vec<u64>,
    hot_state_b: Vec<Vec<StateFp>>,
}

/// Run `input` on `shards` chain instances, optionally with skew-aware
/// routing, and harvest results, counters and final hot-key B state.
fn run_with_policy(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    input: &[Tuple],
    shards: usize,
    skew: Option<SkewConfig>,
) -> Outcome {
    let factory = ChainPlanFactory::new(
        workload.clone(),
        spec.clone(),
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        }
        .with_shards(shards),
    );
    let mut exec = factory.sharded().expect("sharded executor builds");
    if let Some(config) = skew {
        exec.enable_skew(config).expect("skew routing enables");
    }
    exec.ingest_all(CHAIN_ENTRY, input.to_vec())
        .expect("ingest");
    let report = exec.run().expect("run");
    let results = workload
        .queries()
        .iter()
        .map(|q| {
            let mut fp: Vec<(Timestamp, TimeDelta)> = exec
                .sink_collected(&q.name)
                .iter()
                .map(|t| (t.ts, t.origin_span))
                .collect();
            fp.sort_unstable();
            assert_eq!(
                fp.len() as u64,
                report.sink_count(&q.name),
                "retained tuples agree with the merged sink count"
            );
            (q.name.clone(), fp)
        })
        .collect();
    let hot_keys = exec.hot_keys();
    let hot_state_b = harvest_hot_state_b(&mut exec, &hot_keys);
    Outcome {
        results,
        totals: report.totals,
        hot_keys,
        hot_state_b,
    }
}

/// Drain every sliced join of every shard and keep the probe-side tuples
/// whose key hash is in `hot`, fingerprinted and sorted per shard.
fn harvest_hot_state_b(
    exec: &mut state_slice_repro::streamkit::ShardedExecutor,
    hot: &[u64],
) -> Vec<Vec<StateFp>> {
    let mut per_shard = Vec::new();
    for shard in exec.shards_mut() {
        let mut fps: Vec<StateFp> = Vec::new();
        let plan = shard.plan_mut();
        for idx in 0..plan.num_nodes() {
            let node = plan
                .node_mut(state_slice_repro::streamkit::NodeId(idx))
                .expect("index in range");
            if let Some(op) = node
                .operator
                .as_any_mut()
                .downcast_mut::<SlicedBinaryJoinOp>()
            {
                let (_, side_b) = op.drain_states();
                for t in side_b {
                    if let KeyClass::Hash(h) = tuple_key(&t, 0) {
                        if hot.contains(&h) {
                            let Some(&state_slice_repro::streamkit::Value::Int(k)) = t.value(0)
                            else {
                                panic!("join key must be an int");
                            };
                            fps.push((t.ts, k));
                        }
                    }
                }
            }
        }
        fps.sort_unstable();
        per_shard.push(fps);
    }
    per_shard
}

/// `sub` is a multiset subset of `sup`.
fn is_multiset_subset(sub: &[StateFp], sup: &[StateFp]) -> bool {
    let mut counts: HashMap<StateFp, isize> = HashMap::new();
    for fp in sup {
        *counts.entry(*fp).or_default() += 1;
    }
    sub.iter().all(|fp| {
        let c = counts.entry(*fp).or_default();
        *c -= 1;
        *c >= 0
    })
}

fn assert_skew_invariant(single: &Outcome, skewed: &Outcome) {
    // Identical per-sink result multisets.
    assert_eq!(single.results, skewed.results);
    // Output-scaling comparison counters match exactly; see module docs for
    // why each probe still happens exactly once under replication.
    assert_eq!(
        single.totals.probe_comparisons,
        skewed.totals.probe_comparisons
    );
    assert_eq!(
        single.totals.route_comparisons,
        skewed.totals.route_comparisons
    );
    assert_eq!(
        single.totals.union_comparisons,
        skewed.totals.union_comparisons
    );
    assert_eq!(
        single.totals.filter_comparisons,
        skewed.totals.filter_comparisons
    );
    assert_eq!(
        single.totals.split_comparisons,
        skewed.totals.split_comparisons
    );
    assert_eq!(single.totals.items_dropped, 0);
    assert_eq!(skewed.totals.items_dropped, 0);
    // Final-state invariant: the hot-key B tuples the reference retained are
    // resident in every shard of the skew-aware run.
    let reference: Vec<StateFp> = {
        // The reference run has no hot set of its own; reuse the skew-aware
        // run's hot hashes against the reference's single shard state.
        let mut all: Vec<StateFp> = single.hot_state_b.concat();
        all.sort_unstable();
        all
    };
    for (shard, state) in skewed.hot_state_b.iter().enumerate() {
        assert!(
            is_multiset_subset(&reference, state),
            "shard {shard} lost replicated hot-key state: reference {reference:?} not within {state:?}"
        );
    }
}

/// A two-query workload over an equi join on field 0.
fn two_query_workload() -> QueryWorkload {
    QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::with_filter("Q2", TimeDelta::from_secs(7), Predicate::gt(1, 3i64)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap()
}

/// Run the reference with the skew-aware run's hot hashes, so the subset
/// check compares like with like.
fn run_pair(workload: &QueryWorkload, spec: &ChainSpec, input: &[Tuple]) -> (Outcome, Outcome) {
    let skewed = run_with_policy(workload, spec, input, test_shards(), Some(eager_skew()));
    let mut single = run_with_policy(workload, spec, input, 1, None);
    // Re-filter the single run's state with the skew-aware hot set (the
    // single run promoted nothing itself).
    if !skewed.hot_keys.is_empty() {
        let factory = ChainPlanFactory::new(
            workload.clone(),
            spec.clone(),
            PlannerOptions {
                retain_results: true,
                ..PlannerOptions::default()
            }
            .with_shards(1),
        );
        let mut exec = factory.sharded().expect("sharded executor builds");
        exec.ingest_all(CHAIN_ENTRY, input.to_vec())
            .expect("ingest");
        exec.run().expect("run");
        single.hot_state_b = harvest_hot_state_b(&mut exec, &skewed.hot_keys);
    }
    (single, skewed)
}

#[test]
fn skewed_stream_with_hot_keys_matches_the_reference() {
    let workload = two_query_workload();
    // Key 0 carries ~60% of both streams: promoted early, stays hot.
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..240u64 {
        let key = if i % 5 < 3 { 0 } else { (i % 7) as i64 + 1 };
        a.push(tuple(StreamId::A, i * 2, key, (i % 8) as i64));
        b.push(tuple(StreamId::B, i * 2 + 1, key, 0));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    let (single, skewed) = run_pair(&workload, &spec, &input);
    assert_skew_invariant(&single, &skewed);
    assert!(
        !skewed.hot_keys.is_empty(),
        "the dominant key must be promoted"
    );
    assert!(single.results.iter().any(|(_, r)| !r.is_empty()));
    assert!(single.totals.probe_comparisons > 0);
}

#[test]
fn key_becoming_hot_mid_run_matches_the_reference() {
    let workload = two_query_workload();
    // Key 5 is absent for the first half, then dominates the second half:
    // promotion happens mid-run and must migrate the already-routed state.
    // The first half rotates through 16 keys so no cold key's early share
    // ever reaches the 0.2 promotion threshold.
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..120u64 {
        a.push(tuple(
            StreamId::A,
            i * 2,
            (i % 16) as i64 + 10,
            (i % 8) as i64,
        ));
        b.push(tuple(StreamId::B, i * 2 + 1, (i * 5 % 16) as i64 + 10, 0));
    }
    for i in 120..280u64 {
        let key = if i % 4 < 3 { 5 } else { (i % 16) as i64 + 10 };
        a.push(tuple(StreamId::A, i * 2, key, (i % 8) as i64));
        b.push(tuple(StreamId::B, i * 2 + 1, key, 0));
    }
    let input = merge_streams(a, b);
    let spec = ChainSpec::memory_optimal(&workload);
    let (single, skewed) = run_pair(&workload, &spec, &input);
    assert_skew_invariant(&single, &skewed);
    // The late-dominant key must be the one promoted.
    let hot_hash = match tuple_key(&tuple(StreamId::B, 0, 5, 0), 0) {
        KeyClass::Hash(h) => h,
        other => panic!("expected a hash key class, got {other:?}"),
    };
    assert!(
        skewed.hot_keys.contains(&hot_hash),
        "key 5 should be promoted mid-run (hot set: {:?})",
        skewed.hot_keys
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for random Zipf-skewed streams, random window sets, with
    /// and without selections and under both slicing strategies, the
    /// skew-aware N-shard run is indistinguishable from the 1-shard
    /// reference — whether or not any key was actually promoted.
    #[test]
    fn hot_key_replication_is_invisible(
        a_arrivals in prop::collection::vec((0u64..300, 0i64..16, 0i64..8), 1..80),
        b_arrivals in prop::collection::vec((0u64..300, 0i64..16), 1..80),
        windows in prop::collection::btree_set(1u64..15, 1..4),
        with_filter in proptest::bool::ANY,
        merge_all in proptest::bool::ANY,
    ) {
        // Map the raw key draw onto a skewed domain: 9/16 of the mass lands
        // on key 0, the rest spreads over keys 1..8.
        let skew_key = |k: i64| if k < 9 { 0 } else { k - 8 };
        let mut a: Vec<Tuple> = a_arrivals
            .iter()
            .map(|&(t, k, v)| tuple(StreamId::A, t, skew_key(k), v))
            .collect();
        let mut b: Vec<Tuple> = b_arrivals
            .iter()
            .map(|&(t, k)| tuple(StreamId::B, t, skew_key(k), 0))
            .collect();
        a.sort_by_key(|t| t.ts);
        b.sort_by_key(|t| t.ts);
        let queries: Vec<JoinQuery> = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let window = TimeDelta::from_secs(w);
                if with_filter && i > 0 {
                    JoinQuery::with_filter(format!("Q{i}"), window, Predicate::gt(1, 3i64))
                } else {
                    JoinQuery::new(format!("Q{i}"), window)
                }
            })
            .collect();
        let workload = QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap();
        let input = merge_streams(a, b);
        let spec = if merge_all {
            ChainSpec::fully_merged(&workload)
        } else {
            ChainSpec::memory_optimal(&workload)
        };
        let (single, skewed) = run_pair(&workload, &spec, &input);
        assert_skew_invariant(&single, &skewed);
    }
}
