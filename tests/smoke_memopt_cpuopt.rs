//! Smoke test: build the Mem-Opt and CPU-Opt chains for a 3-query workload,
//! execute both over the same input, and check each query's sink count
//! against the brute-force `verify` oracle.
//!
//! This is the fastest end-to-end sanity check of the whole stack (workload →
//! chain buildup → planner → executor → sinks); the `chain_equivalence` tests
//! check full result *sets*, this one guards the happy path cheaply.

use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    expected_results, ChainBuilder, ChainSpec, CostConfig, JoinQuery, QueryWorkload,
};
use state_slice_repro::prelude::*;
use state_slice_repro::streamkit::tuple::StreamId;

fn three_query_workload() -> QueryWorkload {
    QueryWorkload::new(
        vec![
            JoinQuery::new("Q1", TimeDelta::from_secs(2)),
            JoinQuery::with_filter("Q2", TimeDelta::from_secs(6), Predicate::gt(1, 30i64)),
            JoinQuery::new("Q3", TimeDelta::from_secs(12)),
        ],
        JoinCondition::equi(0),
    )
    .unwrap()
}

fn input() -> Vec<Tuple> {
    let a = (0..180u64)
        .map(|i| {
            Tuple::of_ints(
                Timestamp::from_millis(i * 150),
                StreamId::A,
                &[(i % 5) as i64, (i * 7 % 100) as i64],
            )
        })
        .collect();
    let b = (0..180u64)
        .map(|i| {
            Tuple::of_ints(
                Timestamp::from_millis(i * 150 + 70),
                StreamId::B,
                &[(i % 5) as i64, 0],
            )
        })
        .collect();
    merge_streams(a, b)
}

fn sink_counts(workload: &QueryWorkload, spec: &ChainSpec, input: &[Tuple]) -> Vec<(String, u64)> {
    let shared = SharedChainPlan::build(workload, spec, &PlannerOptions::default()).unwrap();
    let mut exec = Executor::new(shared.plan);
    exec.ingest_all(CHAIN_ENTRY, input.to_vec()).unwrap();
    let report = exec.run().unwrap();
    workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), report.sink_count(&q.name)))
        .collect()
}

#[test]
fn mem_opt_and_cpu_opt_sink_counts_match_the_oracle() {
    let workload = three_query_workload();
    let input = input();
    let expected = expected_results(&workload, &input);
    let oracle: Vec<(String, u64)> = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), expected[&q.name].len() as u64))
        .collect();
    assert!(
        oracle.iter().all(|(_, n)| *n > 0),
        "oracle should produce results for every query: {oracle:?}"
    );

    let builder = ChainBuilder::new(workload.clone());

    let mem_opt = builder.memory_optimal();
    assert_eq!(
        sink_counts(&workload, &mem_opt, &input),
        oracle,
        "Mem-Opt chain diverged from the brute-force oracle"
    );

    let cpu_opt = builder.cpu_optimal(&CostConfig::default()).unwrap();
    assert_eq!(
        sink_counts(&workload, &cpu_opt.spec, &input),
        oracle,
        "CPU-Opt chain diverged from the brute-force oracle"
    );

    // The two optimizers may slice differently, but both must cover all
    // three windows.
    assert!(mem_opt.num_slices() >= cpu_opt.spec.num_slices());
}
