//! Cross-strategy integration test: the state-slice chain (Mem-Opt and
//! CPU-Opt), the selection pull-up baseline, the stream-partition push-down
//! baseline and the unshared per-query plans must all deliver exactly the
//! same per-query result counts for the same synthetic workload.

use state_slice_repro::baselines::{
    PullUpPlanBuilder, PushDownPlanBuilder, UnsharedPlanBuilder, ENTRY_A, ENTRY_B,
};
use state_slice_repro::core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_repro::core::{
    ChainBuilder, CostConfig, JoinQuery, QueryWorkload, SharedChainPlan,
};
use state_slice_repro::streamkit::{Executor, JoinCondition};
use state_slice_repro::workload::{Scenario, WindowDistribution, JOIN_KEY_FIELD};

fn build_workload(scenario: &Scenario) -> QueryWorkload {
    let filter = scenario.filter_predicate();
    QueryWorkload::new(
        scenario
            .windows()
            .into_iter()
            .enumerate()
            .map(|(i, w)| match (&filter, i) {
                (Some(pred), i) if i > 0 => {
                    JoinQuery::with_filter(format!("Q{}", i + 1), w, pred.clone())
                }
                _ => JoinQuery::new(format!("Q{}", i + 1), w),
            })
            .collect(),
        JoinCondition::equi(JOIN_KEY_FIELD),
    )
    .unwrap()
}

fn per_query_counts_for_all_strategies(scenario: &Scenario) -> Vec<Vec<u64>> {
    let workload = build_workload(scenario);
    let (a, b) = scenario.generator().generate_pair();
    let mut all_counts = Vec::new();

    // Chain strategies.
    let builder = ChainBuilder::new(workload.clone());
    let cost = CostConfig {
        lambda_a: scenario.rate,
        lambda_b: scenario.rate,
        sel_join: scenario.sel_join,
        csys: 10.0,
    };
    for spec in [
        builder.memory_optimal(),
        builder.cpu_optimal(&cost).unwrap().spec,
    ] {
        let shared = SharedChainPlan::build(&workload, &spec, &PlannerOptions::default()).unwrap();
        let mut exec = Executor::new(shared.plan);
        exec.ingest_all(CHAIN_ENTRY, merge_streams(a.clone(), b.clone()))
            .unwrap();
        let report = exec.run().unwrap();
        all_counts.push(
            workload
                .queries()
                .iter()
                .map(|q| report.sink_count(&q.name))
                .collect(),
        );
    }

    // Baseline strategies.
    let baselines = vec![
        PullUpPlanBuilder::new().build(&workload).unwrap(),
        PushDownPlanBuilder::new().build(&workload).unwrap(),
        UnsharedPlanBuilder::new().build(&workload).unwrap(),
    ];
    for built in baselines {
        let mut exec = Executor::new(built.plan);
        exec.ingest_all(ENTRY_A, a.clone()).unwrap();
        exec.ingest_all(ENTRY_B, b.clone()).unwrap();
        let report = exec.run().unwrap();
        all_counts.push(
            workload
                .queries()
                .iter()
                .map(|q| report.sink_count(&q.name))
                .collect(),
        );
    }
    all_counts
}

#[test]
fn all_strategies_agree_with_selections() {
    let scenario = Scenario {
        rate: 25.0,
        duration_secs: 10.0,
        num_queries: 3,
        distribution: WindowDistribution::MostlySmall,
        sel_filter: 0.4,
        sel_join: 0.1,
        seed: 5,
    };
    let counts = per_query_counts_for_all_strategies(&scenario);
    assert!(counts.iter().all(|c| c == &counts[0]), "{counts:?}");
    assert!(
        counts[0].iter().sum::<u64>() > 0,
        "workload produced no results"
    );
    // Larger windows never receive fewer results than smaller ones of the
    // same filtered group.
    assert!(counts[0][2] >= counts[0][1]);
}

#[test]
fn all_strategies_agree_without_selections() {
    let scenario = Scenario {
        rate: 25.0,
        duration_secs: 10.0,
        num_queries: 4,
        distribution: WindowDistribution::Uniform,
        sel_filter: 1.0,
        sel_join: 0.05,
        seed: 11,
    };
    let counts = per_query_counts_for_all_strategies(&scenario);
    assert!(counts.iter().all(|c| c == &counts[0]), "{counts:?}");
    // Without filters the per-query counts are monotone in the window size.
    let first = &counts[0];
    assert!(first.windows(2).all(|w| w[1] >= w[0]));
}

#[test]
fn twelve_query_small_large_workload_agrees_between_memopt_and_cpuopt() {
    let scenario = Scenario {
        rate: 20.0,
        duration_secs: 8.0,
        num_queries: 12,
        distribution: WindowDistribution::SmallLarge,
        sel_filter: 1.0,
        sel_join: 0.025,
        seed: 3,
    };
    let counts = per_query_counts_for_all_strategies(&scenario);
    assert!(counts.iter().all(|c| c == &counts[0]), "{counts:?}");
    assert_eq!(counts[0].len(), 12);
}
