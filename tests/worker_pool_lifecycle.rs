//! Stress/soak test for the persistent worker pool under live churn.
//!
//! The sharded executor creates its worker threads once (one per shard,
//! each fed by a bounded SPSC ring) and reuses them across every
//! `run`/`pause`/`resume`/`swap_plans` cycle the [`LiveReslicer`] drives.
//! This suite pins the lifecycle invariants:
//!
//! * **no worker leaks** — the process thread count (via `/proc/self/task`)
//!   is identical after every epoch that ends on the launch shard count, and
//!   returns to baseline after a down/up rescale pair (retired pools join
//!   their workers on drop);
//! * **drained quiescence** — after every `drain` the executor reports
//!   `is_drained` and a second drain changes nothing;
//! * **monotone backpressure counters** — the cumulative
//!   `router_stalls` counter never decreases across epochs, including
//!   across rescales (retired executors' reports are folded in);
//! * **skew guard** — shard rescaling refuses to run while replicated
//!   hot keys are active, and the refusal leaves the session working;
//! * **kill-and-recover soak** — repeated injected worker crashes recover
//!   on the *same* pool (the named-worker census never moves), with the
//!   backpressure and shed counters staying monotone throughout.
//!
//! `SS_TEST_SHARDS` (default 4, minimum 2) sets the pool width.

use std::sync::Mutex;

use state_slice_repro::core::live::{LiveOptions, LiveReslicer};
use state_slice_repro::core::planner::PlannerOptions;
use state_slice_repro::core::recovery::{OverflowPolicy, RecoveryConfig, RecoverySupervisor};
use state_slice_repro::core::{ChainPlanFactory, ChainSpec, JoinQuery, QueryWorkload};
use state_slice_repro::streamkit::fault::FaultPlan;
use state_slice_repro::streamkit::punctuation::Punctuation;
use state_slice_repro::streamkit::tuple::StreamId;
use state_slice_repro::streamkit::{
    ExecutorConfig, JoinCondition, SkewConfig, TimeDelta, Timestamp, Tuple,
};

/// Serialises the tests in this binary: thread-count assertions must not
/// race another test's pool creation.
static THREAD_COUNT_LOCK: Mutex<()> = Mutex::new(());

/// Pool width for the soak (`SS_TEST_SHARDS`, default 4).
fn test_shards() -> usize {
    std::env::var("SS_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

/// Live `ss-shard-*` worker threads of this process, if the platform
/// exposes thread names.  Counting only the pool's named workers keeps the
/// check independent of test-harness threads starting or finishing.
fn worker_thread_count() -> Option<usize> {
    let dir = std::fs::read_dir("/proc/self/task").ok()?;
    let mut count = 0;
    for entry in dir.flatten() {
        if let Ok(comm) = std::fs::read_to_string(entry.path().join("comm")) {
            if comm.trim().starts_with("ss-shard") {
                count += 1;
            }
        }
    }
    Some(count)
}

/// Assert the worker set settles at `expected` threads.  A freshly spawned
/// worker names itself from inside the new thread, so the name can lag its
/// creation by a scheduling quantum — poll briefly instead of snapshotting.
fn assert_workers_settle(expected: usize, context: &str) {
    if worker_thread_count().is_none() {
        return; // platform exposes no thread names; skip the leak check
    }
    for _ in 0..200 {
        if worker_thread_count() == Some(expected) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!(
        "{context}: worker threads {:?} never settled at {expected}",
        worker_thread_count()
    );
}

fn tuple(stream: StreamId, tenths: u64, key: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(tenths * 100), stream, &[key, 0])
}

fn query(name: &str, window_secs: u64) -> JoinQuery {
    JoinQuery::new(name, TimeDelta::from_secs(window_secs))
}

fn workload(queries: Vec<JoinQuery>) -> QueryWorkload {
    QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
}

fn live_options(shards: usize) -> LiveOptions {
    LiveOptions {
        planner: PlannerOptions {
            retain_results: true,
            shards,
            ..PlannerOptions::default()
        },
        ..LiveOptions::default()
    }
}

/// A chunk of interleaved A/B tuples starting at `*tenths`, keys spread over
/// a small domain so every shard receives work.
fn chunk(tenths: &mut u64, len: u64) -> Vec<Tuple> {
    let mut items = Vec::new();
    for i in 0..len {
        items.push(tuple(StreamId::A, *tenths, (i % 8) as i64));
        items.push(tuple(StreamId::B, *tenths + 1, ((i * 3) % 8) as i64));
        *tenths += 2;
    }
    items
}

#[test]
fn worker_pool_survives_churn_epochs_without_leaking_threads() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap();
    let shards = test_shards();
    let rescale_to = if shards == 2 { 3 } else { 2 };
    let mut live = LiveReslicer::launch(
        workload(vec![query("QA", 15), query("C5", 5)]),
        live_options(shards),
    )
    .unwrap();
    // The pool exists from launch, one named worker per shard; any extra
    // worker after this point is a leak.
    assert_workers_settle(shards, "launch");
    let mut tenths = 0u64;
    let mut last_stalls = 0u64;

    // Repeated run cycles on one pool: the worker set must not move.
    for _ in 0..5 {
        live.ingest_all(chunk(&mut tenths, 200)).unwrap();
        let report = live.drain().unwrap();
        assert!(live.executor().is_drained(), "drain must reach quiescence");
        assert!(
            report.totals.router_stalls >= last_stalls,
            "router_stalls must be monotone"
        );
        last_stalls = report.totals.router_stalls;
        assert_workers_settle(shards, "run cycle");
    }
    // A second drain with nothing pending is a no-op at the same report.
    let before = live.drain().unwrap();
    let after = live.drain().unwrap();
    assert_eq!(before.totals, after.totals);
    assert_eq!(before.sink_counts, after.sink_counts);

    // Churn epochs: add/remove queries, rescale down and back up.
    for epoch in 0..6u64 {
        live.ingest_all(chunk(&mut tenths, 120)).unwrap();
        match epoch % 6 {
            0 => live.add_query(query("C3", 3)).unwrap(),
            1 => live.remove_query("C3").map(|_| ()).unwrap(),
            2 => live.rescale_shards(rescale_to).unwrap(),
            3 => live.rescale_shards(shards).unwrap(),
            4 => live.add_query(query("C7", 7)).unwrap(),
            _ => live.remove_query("C7").map(|_| ()).unwrap(),
        }
        let report = live.drain().unwrap();
        assert!(live.executor().is_drained());
        assert!(
            report.totals.router_stalls >= last_stalls,
            "router_stalls must stay monotone across epoch {epoch}"
        );
        last_stalls = report.totals.router_stalls;
        // Retired pools join their workers: the live worker set always
        // matches the current shard count exactly.
        assert_workers_settle(live.num_shards(), &format!("epoch {epoch}"));
    }
    assert_eq!(live.num_shards(), shards, "soak ends on the launch width");

    // The chain still computes: the anchor query keeps receiving results.
    live.ingest_all(chunk(&mut tenths, 100)).unwrap();
    let report = live.drain().unwrap();
    assert!(report.sink_count("QA") > 0, "anchor query starved");
    let outcome = live.finish().unwrap();
    assert!(outcome.query("QA").is_some());
    // Finishing the reslicer drops its executor, which joins the pool.
    drop(outcome);
    assert_workers_settle(0, "after finish");
}

#[test]
fn rescale_refuses_while_hot_keys_are_replicated_and_session_survives() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap();
    let shards = test_shards();
    let wl = workload(vec![query("QA", 15), query("C5", 5)]);
    let spec = ChainSpec::memory_optimal(&wl);
    let factory = ChainPlanFactory::new(
        wl.clone(),
        spec.clone(),
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        }
        .with_shards(shards),
    );
    let mut exec = factory.sharded().unwrap();
    exec.enable_skew(SkewConfig {
        hot_share: 0.3,
        min_observations: 8,
        sketch_capacity: 16,
        max_hot_keys: 2,
        demote_observations: 0,
    })
    .unwrap();
    let mut live = LiveReslicer::attach(exec, wl, spec, live_options(shards)).unwrap();

    // Key 0 dominates both streams: promoted almost immediately.
    let mut items = Vec::new();
    for i in 0..200u64 {
        let key = if i % 3 < 2 { 0 } else { (i % 7) as i64 };
        items.push(tuple(StreamId::A, i * 2, key));
        items.push(tuple(StreamId::B, i * 2 + 1, key));
    }
    live.ingest_all(items).unwrap();
    live.drain().unwrap();
    assert!(
        live.executor().has_hot_keys(),
        "the dominant key must be promoted"
    );

    // Rescaling to a different width must refuse...
    let target = if shards == 2 { 3 } else { 2 };
    let err = live.rescale_shards(target).unwrap_err();
    assert!(
        err.to_string().contains("hot keys"),
        "unexpected rescale error: {err}"
    );
    // ...while rescaling to the current width stays a no-op.
    live.rescale_shards(shards).unwrap();
    assert_eq!(live.num_shards(), shards);

    // The refusal left the session intact: query churn and further input
    // still work on the same pool.
    live.add_query(query("C3", 3)).unwrap();
    let mut more = Vec::new();
    for i in 200..260u64 {
        more.push(tuple(StreamId::A, i * 2, 0));
        more.push(tuple(StreamId::B, i * 2 + 1, 0));
    }
    live.ingest_all(more).unwrap();
    let report = live.drain().unwrap();
    assert!(report.sink_count("QA") > 0);
    assert!(live.executor().has_hot_keys(), "hot set survives churn");
}

#[test]
fn kill_and_recover_soak_reuses_the_pool_and_keeps_counters_monotone() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap();
    let shards = test_shards();
    let wl = workload(vec![query("QA", 15), query("C5", 5)]);
    let spec = ChainSpec::memory_optimal(&wl);
    let factory = ChainPlanFactory::new(
        wl,
        spec,
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default()
        }
        .with_shards(shards),
    );
    // A tiny shedding ring keeps the overflow path exercised alongside the
    // crashes (recovery is best-effort under Shed, but the pool and counter
    // invariants must hold regardless).
    let mut sup = RecoverySupervisor::launch(
        factory,
        ExecutorConfig::default(),
        RecoveryConfig {
            checkpoint_every_epochs: 3,
            replay_capacity: 64,
            overflow: OverflowPolicy::Shed,
        },
    )
    .unwrap();
    assert_workers_settle(shards, "launch");

    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut secs = 0u64;
    let mut last_stalls = 0u64;
    let mut last_shed = 0u64;
    for round in 0..4usize {
        // Re-arm a fresh crash a few punctuation epochs ahead, rotating the
        // victim shard; each second feeds both streams plus a punctuation.
        sup.arm_fault(round % shards, FaultPlan::panic_at(secs + 3))
            .unwrap();
        for _ in 0..8 {
            sup.ingest(tuple(StreamId::A, secs * 10, (secs % 8) as i64))
                .unwrap();
            sup.ingest(tuple(StreamId::B, secs * 10 + 1, ((secs * 3) % 8) as i64))
                .unwrap();
            sup.ingest(Punctuation::new(Timestamp::from_secs(secs)))
                .unwrap();
            secs += 1;
        }
        let report = sup.run().unwrap();
        assert_eq!(
            sup.log().recoveries().len(),
            round + 1,
            "round {round}: each armed panic fires exactly one recovery"
        );
        // The leak check, re-run after every recovery: the crash unwound
        // inside the worker's catch harness, so the pool never respawns.
        assert_workers_settle(shards, &format!("after recovery {round}"));
        assert!(
            report.totals.router_stalls >= last_stalls,
            "round {round}: router_stalls must stay monotone across recoveries"
        );
        last_stalls = report.totals.router_stalls;
        assert!(
            sup.log().items_shed() >= last_shed,
            "round {round}: items_shed must be monotone"
        );
        last_shed = sup.log().items_shed();
    }
    std::panic::set_hook(hook);

    // The soaked session still computes and shuts down clean.
    let (report, log) = sup.finish().unwrap();
    assert!(report.sink_count("QA") > 0, "anchor query starved");
    assert_eq!(log.recoveries().len(), 4);
    assert_workers_settle(0, "after finish");
}
