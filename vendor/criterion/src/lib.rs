//! Offline stand-in for the subset of the [`criterion` 0.5] API used by the
//! `ss_bench` benchmark targets: benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the `benches/` sources source-compatible with the real criterion.
//! It performs straightforward wall-clock timing (one warm-up iteration, then
//! `sample_size` timed iterations) and prints mean / min / max per benchmark —
//! no statistical analysis, HTML reports, or baseline comparison.
//!
//! [`criterion` 0.5]: https://docs.rs/criterion/0.5

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `sample_size` runs of `routine` (after one untimed warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{label:<50} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({n} samples)",
        n = bencher.samples.len()
    );
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `routine` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}/{}", self.name, id.function_name, id.parameter);
        run_one(&label, self.sample_size, |b| routine(b, input));
        self
    }

    /// Benchmark an un-parameterised `routine` labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkLabel>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, |b| routine(b));
        self
    }

    /// Mark the group as complete (prints a trailing newline).
    pub fn finish(self) {
        println!();
    }
}

/// Either a plain string label or a [`BenchmarkId`].
pub struct BenchmarkLabel(String);

impl From<&str> for BenchmarkLabel {
    fn from(s: &str) -> Self {
        BenchmarkLabel(s.to_string())
    }
}

impl From<String> for BenchmarkLabel {
    fn from(s: String) -> Self {
        BenchmarkLabel(s)
    }
}

impl From<BenchmarkId> for BenchmarkLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkLabel(format!("{}/{}", id.function_name, id.parameter))
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmark a single un-grouped function.
    pub fn bench_function<F>(
        &mut self,
        name: impl Into<BenchmarkLabel>,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into().0, DEFAULT_SAMPLE_SIZE, |b| routine(b));
        self
    }
}

/// Define a function running a sequence of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_function_accepts_str_and_id() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        c.bench_function(BenchmarkId::new("param", 7), |b| b.iter(|| 2 + 2));
    }
}
