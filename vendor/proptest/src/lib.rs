//! Offline stand-in for the subset of the [`proptest` 1.x] API used by this
//! workspace's property tests: the `proptest!` macro over `ident in strategy`
//! bindings, `ProptestConfig::with_cases`, range / tuple / collection / bool
//! strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the `tests/` sources source-compatible with the real proptest.  It
//! runs each property over `cases` deterministically seeded random inputs.
//! Unlike the real proptest there is **no shrinking**: a failing case panics
//! with the sampled values left to the assertion message.
//!
//! [`proptest` 1.x]: https://docs.rs/proptest/1

use core::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving value sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Width via the unsigned counterpart so signed ranges wider
                // than the type's positive half don't sign-extend.
                let span = (self.end as $ut).wrapping_sub(self.start as $ut) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(
    (i64, u64),
    (u64, u64),
    (i32, u32),
    (u32, u32),
    (usize, usize)
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use super::{Strategy, TestRng};

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::{vec, btree_set}`).

    use super::{Strategy, TestRng};
    use core::ops::Range;
    use std::collections::BTreeSet;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy with lengths in `len` (half-open, as in proptest).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` strategy with sizes in `size` (half-open).  The element
    /// domain must be large enough to supply `size.end - 1` distinct values.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.element.sample(rng));
                attempts += 1;
                assert!(
                    attempts < 1000 * (target + 1),
                    "element domain too small for a {target}-element set"
                );
            }
            set
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Assert inside a property, mirroring `proptest::prop_assert!`.
///
/// Without shrinking there is no failure persistence, so this is a plain
/// `assert!` — the panic aborts the whole property run.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests over `ident in strategy` bindings, mirroring
/// `proptest::proptest!`.
///
/// Each generated `#[test]` function samples every binding from its strategy
/// and runs the body, `config.cases` times with per-case deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr)) => {};
    (@run ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                // Vary the seed per test name and case for input diversity
                // while keeping every run reproducible.
                let mut seed = 0x5EED_0000_0000_0000u64 ^ (case as u64);
                for byte in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(byte as u64);
                }
                let mut rng = $crate::TestRng::deterministic(seed);
                $(let $binding = $crate::Strategy::sample(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(0i64..10), &mut rng);
            assert!((0..10).contains(&v));
            let (a, b, c) = Strategy::sample(&(0u64..4, 0i64..4, 1.0f64..2.0), &mut rng);
            assert!(a < 4 && (0..4).contains(&b) && (1.0..2.0).contains(&c));
        }
    }

    #[test]
    fn collections_honour_size_ranges() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..100 {
            let v = Strategy::sample(&prop::collection::vec(0i64..5, 1..8), &mut rng);
            assert!((1..8).contains(&v.len()));
            let s = Strategy::sample(&prop::collection::btree_set(0u64..50, 2..6), &mut rng);
            assert!((2..6).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, trailing comma, doc comments.
        #[test]
        fn macro_generates_runnable_tests(
            xs in prop::collection::vec((0u64..9, 0i64..9), 1..5),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
