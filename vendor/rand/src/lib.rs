//! Offline stand-in for the subset of the [`rand` 0.8] API this workspace
//! uses: `StdRng::seed_from_u64` plus `Rng::gen_range` over integer and float
//! ranges.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps `ss_workload` source-compatible with the real `rand`.  The generator
//! is SplitMix64 — statistically solid for workload synthesis, deterministic
//! per seed, and dependency-free.  It is **not** the real `rand`'s ChaCha12
//! and must not be used for anything security-sensitive.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                // Width via the unsigned counterpart so signed ranges wider
                // than the type's positive half don't sign-extend.
                let span = (self.end as $ut).wrapping_sub(self.start as $ut) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below what any workload statistic can see.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(
    (i64, u64),
    (u64, u64),
    (i32, u32),
    (u32, u32),
    (usize, usize)
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample from empty range {:?}..{:?}",
            self.start,
            self.end
        );
        // 53 uniform mantissa bits -> unit in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range, as `rand::Rng::gen_range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use crate::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`, backed by SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn int_samples_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0i64..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
    }

    #[test]
    fn float_samples_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn signed_ranges_wider_than_the_positive_half_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&v));
            let w = rng.gen_range(i64::MIN / 2 - 10..i64::MAX / 2 + 10);
            assert!((i64::MIN / 2 - 10..i64::MAX / 2 + 10).contains(&w));
        }
    }

    #[test]
    fn offset_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = rng.gen_range(50i64..60);
            assert!((50..60).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }
}
